#include "p2p/chain_node.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace bcwan::p2p {

using chain::Block;
using chain::Transaction;

ChainNode::ChainNode(Transport& net, HostId host,
                     const chain::ChainParams& params, ChainNodeConfig config,
                     std::uint64_t seed)
    : net_(net),
      host_(host),
      config_(std::move(config)),
      rng_(seed),
      chain_(params),
      mempool_(chain_.params()) {
  if (persistent()) {
    std::string error;
    if (!open_store_and_recover(&error)) {
      // Construction-time refusal means the operator pointed the daemon at
      // a store with mid-file corruption; nothing sane to fall back to.
      throw std::runtime_error("chain store: " + error);
    }
    resurrect_disconnected();
  }
  net_.set_handler(host_, [this](const Message& msg) { handle_message(msg); });
}

bool ChainNode::open_store_and_recover(std::string* error) {
  store::StoreOptions opts;
  opts.dir = config_.store_dir;
  opts.fsync_each_append = config_.store_fsync;
  opts.snapshot_interval = config_.snapshot_interval;
  opts.incremental_snapshots = config_.incremental_snapshots;
  opts.compact_every = config_.compact_every;
  opts.undo_prune_depth = config_.undo_prune_depth;
  opts.replay_threads = config_.replay_threads;
  auto opened = store::ChainStore::open(chain_.params(), std::move(opts), error);
  if (!opened) return false;
  store_ = std::move(opened);
  last_recovery_ = store_->recovery();
  chain_ = store_->take_chain();
  chain_.set_block_sink(
      [this](const Block& block, const chain::BlockUndo* undo) {
        store_->append_block(block, undo);
      });
  return true;
}

void ChainNode::crash() {
  crashed_ = true;
  // Process death: the sink's captured store pointer dies with us.
  chain_.set_block_sink(nullptr);
  store_.reset();
  mempool_.clear();
  orphan_txs_.clear();
  seen_txs_.clear();
  seen_blocks_.clear();
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_node_crashes_total", "Chain daemon crash-stops")
        .add();
  }
}

bool ChainNode::restart() {
  if (!crashed_) return true;
  if (persistent()) {
    std::string error;
    if (!open_store_and_recover(&error)) return false;
  } else {
    // No disk: reboot at genesis and let gossip catch-up sync refill us.
    chain_ = chain::Blockchain(chain_.params());
  }
  crashed_ = false;
  // Replay can end in a reorg whose losing branch carried live exchanges;
  // resurrect them exactly like an online reorg would.
  resurrect_disconnected();
  for (const auto& watcher : restart_watchers_) watcher();
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_node_restarts_total", "Chain daemon restarts")
        .add();
  }
  return true;
}

std::uint64_t ChainNode::tear_store_tail(std::uint64_t bytes) {
  if (!persistent()) return 0;
  return store::tear_log_tail(store::log_file_path(config_.store_dir), bytes);
}

chain::MempoolAcceptResult ChainNode::submit_tx(const Transaction& tx) {
  if (crashed_) {
    chain::MempoolAcceptResult dead;
    dead.error = chain::MempoolError::kInvalid;
    return dead;
  }
  const auto result = mempool_.accept(tx, chain_.utxo(), chain_.height() + 1);
  if (result.ok()) {
    seen_txs_.insert(tx.txid());
    ++txs_seen_;
    for (const auto& watcher : tx_watchers_) watcher(tx);
    relay_tx(tx);
    drain_orphan_txs();
  }
  return result;
}

chain::AcceptBlockResult ChainNode::submit_block(const Block& block) {
  if (crashed_) return chain::AcceptBlockResult::kInvalid;
  const auto result = chain_.accept_block(block);
  if (result == chain::AcceptBlockResult::kConnected ||
      result == chain::AcceptBlockResult::kReorganized) {
    seen_blocks_.insert(block.hash());
    ++blocks_seen_;
    mempool_.remove_confirmed(block);
    if (result == chain::AcceptBlockResult::kReorganized) {
      resurrect_disconnected();
      for (const auto& watcher : reorg_watchers_)
        watcher(chain_.last_fork_height());
    }
    for (const auto& watcher : block_watchers_) watcher(block);
    if (store_) store_->maybe_snapshot(chain_);
    relay_block(block);
  }
  return result;
}

void ChainNode::handle_message(const Message& msg) {
  if (crashed_) return;  // a dead process receives nothing
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_p2p_messages_in_total", "type", msg.type,
                 "Messages delivered to chain daemons by type")
        .add();
  }
  if (msg.type == "tx") {
    const auto tx = Transaction::deserialize(msg.payload);
    if (tx) {
      if (raw_tx_tap_) raw_tx_tap_(*tx);
      accept_gossip_tx(*tx);
    }
    return;
  }
  if (msg.type == "block") {
    const auto block = Block::deserialize(msg.payload);
    if (block) accept_gossip_block(*block, msg.from);
    return;
  }
  if (msg.type == "getblocks") {
    serve_sync(msg.from, msg.payload);
    return;
  }
  if (app_handler_) app_handler_(msg);
}

void ChainNode::accept_gossip_tx(const Transaction& tx) {
  const chain::Hash256 txid = tx.txid();
  if (seen_txs_.count(txid)) return;
  // Charge validation CPU: everything behind this message waits.
  net_.stall(host_, config_.tx_processing);
  const auto result = mempool_.accept(tx, chain_.utxo(), chain_.height() + 1);
  if (!result.ok()) {
    // Gossip can reorder a chain of unconfirmed spends; park the child
    // until its parent shows up.
    if (result.error == chain::MempoolError::kInvalid &&
        result.validation.error == chain::TxError::kMissingInput &&
        orphan_txs_.size() < 1000) {
      orphan_txs_.push_back(tx);
    }
    return;
  }
  seen_txs_.insert(txid);
  ++txs_seen_;
  for (const auto& watcher : tx_watchers_) watcher(tx);
  relay_tx(tx);
  drain_orphan_txs();
}

void ChainNode::drain_orphan_txs() {
  if (draining_orphans_ || orphan_txs_.empty()) return;
  draining_orphans_ = true;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::vector<Transaction> still_orphans;
    for (const Transaction& orphan : orphan_txs_) {
      const auto result =
          mempool_.accept(orphan, chain_.utxo(), chain_.height() + 1);
      if (result.ok()) {
        seen_txs_.insert(orphan.txid());
        ++txs_seen_;
        for (const auto& watcher : tx_watchers_) watcher(orphan);
        relay_tx(orphan);
        progressed = true;
      } else if (result.error == chain::MempoolError::kInvalid &&
                 result.validation.error == chain::TxError::kMissingInput) {
        still_orphans.push_back(orphan);
      }
      // Other failures (conflict, already known) drop the orphan for good.
    }
    orphan_txs_ = std::move(still_orphans);
  }
  draining_orphans_ = false;
}

void ChainNode::accept_gossip_block(const Block& block, HostId from) {
  const chain::Hash256 hash = block.hash();
  if (seen_blocks_.count(hash)) return;

  // Block verification cost. In Fig. 6 mode the daemon freezes for a long
  // sampled verification period on *every* block arrival.
  net_.stall(host_, config_.block_processing);
  if (config_.block_verification_stall) {
    const double stall_s =
        rng_.lognormal(std::log(config_.stall_median_s), config_.stall_sigma);
    net_.stall(host_, util::from_seconds(stall_s));
  }

  const auto result = chain_.accept_block(block);
  if (result == chain::AcceptBlockResult::kInvalid ||
      result == chain::AcceptBlockResult::kDuplicate) {
    return;
  }
  seen_blocks_.insert(hash);
  ++blocks_seen_;
  if (result == chain::AcceptBlockResult::kConnected ||
      result == chain::AcceptBlockResult::kReorganized) {
    mempool_.remove_confirmed(block);
    if (result == chain::AcceptBlockResult::kReorganized) {
      resurrect_disconnected();
      for (const auto& watcher : reorg_watchers_)
        watcher(chain_.last_fork_height());
    }
    for (const auto& watcher : block_watchers_) watcher(block);
    if (store_) store_->maybe_snapshot(chain_);
    drain_orphan_txs();
  }
  if (result == chain::AcceptBlockResult::kOrphan) {
    // We're missing ancestors: a partition/crash made us skip history, or
    // the sender reorganised onto a branch whose early blocks were never
    // relayed (side-branch blocks aren't gossiped). Ask the sender to
    // stream the gap; without this the node parks orphans forever.
    request_sync(from);
  }
  relay_block(block);
}

void ChainNode::resurrect_disconnected() {
  // A reorg just orphaned part of the old chain. Its transactions are in
  // dependency order; re-accept what is still valid against the new chain
  // (anything re-mined on the winning branch fails harmlessly) and relay,
  // so in-flight exchanges survive the reorg instead of timing out.
  for (const Transaction& tx : chain_.take_disconnected_txs()) {
    const auto result =
        mempool_.accept(tx, chain_.utxo(), chain_.height() + 1);
    if (!result.ok()) continue;
    seen_txs_.insert(tx.txid());
    for (const auto& watcher : tx_watchers_) watcher(tx);
    relay_tx(tx);
  }
}

void ChainNode::request_sync(HostId peer) {
  if (peer < 0 || peer == host_) return;
  // One catch-up request per window: each gossiped descendant of a missing
  // block would otherwise trigger its own full resync.
  if (net_.now() - last_sync_request_ < 2 * util::kSecond) return;
  last_sync_request_ = net_.now();
  ++sync_requests_;
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_p2p_sync_requests_total",
                 "Catch-up sync rounds requested from a peer")
        .add();
  }
  net_.send(host_, peer, Message{"getblocks", build_locator(), host_});
}

util::Bytes ChainNode::build_locator() const {
  // Bitcoin-style exponential locator over our active chain, newest first:
  // the serving peer finds the highest hash it shares and streams from
  // there, so deep divergences still converge in O(log n) locator entries.
  util::Bytes locator;
  const int tip = chain_.height();
  int step = 1;
  int count = 0;
  for (int h = tip; h > 0 && count < 31; h -= step, ++count) {
    const auto& hash = chain_.active_chain()[static_cast<std::size_t>(h)];
    locator.insert(locator.end(), hash.begin(), hash.end());
    if (count >= 8) step *= 2;
  }
  const auto& genesis = chain_.active_chain().front();
  locator.insert(locator.end(), genesis.begin(), genesis.end());
  return locator;
}

void ChainNode::serve_sync(HostId peer, const util::Bytes& locator) {
  if (peer < 0 || peer == host_) return;
  if (locator.empty() || locator.size() % 32 != 0) return;
  // Highest locator entry on our active chain = the fork point.
  int ancestor = 0;
  const auto& active = chain_.active_chain();
  bool found = false;
  for (std::size_t i = 0; i < locator.size() && !found; i += 32) {
    chain::Hash256 hash;
    std::copy(locator.begin() + static_cast<std::ptrdiff_t>(i),
              locator.begin() + static_cast<std::ptrdiff_t>(i) + 32,
              hash.begin());
    for (int h = chain_.height(); h >= 0; --h) {
      if (active[static_cast<std::size_t>(h)] == hash) {
        ancestor = h;
        found = true;
        break;
      }
    }
  }
  if (!found) return;  // disjoint chains (different genesis) — nothing to do
  constexpr int kMaxBlocksPerResponse = 256;
  const int last =
      std::min(chain_.height(), ancestor + kMaxBlocksPerResponse);
  for (int h = ancestor + 1; h <= last; ++h) {
    const auto block = chain_.block_at(h);
    if (!block) break;
    net_.send(host_, peer, Message{"block", block->serialize(), host_});
    ++sync_served_;
    if (telemetry::enabled()) {
      telemetry::registry()
          .counter("bcwan_p2p_sync_blocks_served_total",
                   "Blocks streamed to peers during catch-up sync")
          .add();
    }
  }
}

void ChainNode::relay_tx(const Transaction& tx) {
  net_.broadcast(host_, Message{"tx", tx.serialize(), host_});
}

void ChainNode::relay_block(const Block& block) {
  net_.broadcast(host_, Message{"block", block.serialize(), host_});
}

}  // namespace bcwan::p2p

// Real-socket Transport backend: epoll, non-blocking TCP, localhost or LAN.
//
// This is the deployable counterpart of SimNet — the backbone the paper's
// PlanetLab daemons actually had (§5.2). One TcpTransport serves one
// daemon (one HostId); the federation is a set of processes, each dialing
// every peer in its address table.
//
// Connection model: per peer pair there are two simplex TCP connections.
// Each daemon owns the connection it dialed and only ever *writes* frames
// on it; frames are *read* from connections the peer dialed to us. That
// removes simultaneous-connect dedup entirely — both sides dial, both
// succeed, each direction has exactly one owner. (Reads are still serviced
// on outbound sockets so EOF/garbage from the remote is noticed.)
//
// Failure discipline (the chaos pack's contract): a peer that vanishes
// mid-frame, sends garbage, or overruns the frame caps costs us exactly
// one connection teardown — drop + reconnect with jittered exponential
// backoff, never a crash, never a blocked daemon. Frames queued for a dead
// peer are bounded by `max_queue_bytes` and dropped beyond it; the
// protocol layer (getblocks catch-up) heals whatever the wire loses.
//
// Threading: everything runs on the thread that calls run()/poll().
// Handler callbacks, timers and reconnects all fire there, so a ChainNode
// driven by one TcpTransport needs no locks — same single-daemon-thread
// discipline the simulator enforces with virtual time. stop() is safe to
// call from a signal handler (one eventfd write).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "p2p/framing.hpp"
#include "p2p/transport.hpp"
#include "util/rng.hpp"

namespace bcwan::p2p {

struct TcpTransportConfig {
  /// This daemon's HostId — its index in the federation address table.
  HostId self = 0;
  /// "ip:port" to bind + listen on; port 0 picks an ephemeral port
  /// (read it back via listen_port()). Empty disables listening.
  std::string listen = "127.0.0.1:0";
  /// Federation address table, indexed by HostId. The self entry and empty
  /// entries are ignored; addresses may also arrive later via
  /// set_peer_address().
  std::vector<std::string> peers;
  /// Reconnect backoff schedule (see reconnect_backoff()).
  util::SimTime backoff_base = 100 * util::kMillisecond;
  util::SimTime backoff_cap = 5 * util::kSecond;
  /// Per-peer pending-write cap; whole frames beyond it are dropped.
  std::size_t max_queue_bytes = 16 * 1024 * 1024;
  /// Seed for the reconnect jitter stream.
  std::uint64_t seed = 1;
};

/// Always-on transport statistics (telemetry mirrors them when enabled).
struct TcpStats {
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t connects = 0;            // outbound connections established
  std::uint64_t accepts = 0;             // inbound connections accepted
  std::uint64_t reconnect_attempts = 0;  // dial attempts after a failure
  std::uint64_t frames_rejected = 0;     // framing violations (-> disconnect)
  std::uint64_t queue_drops = 0;         // frames dropped at the queue cap
};

class TcpTransport final : public Transport {
 public:
  /// Binds and listens immediately; throws std::runtime_error if the
  /// listen address is unusable. Peer dialing starts on the first poll().
  explicit TcpTransport(TcpTransportConfig config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // -- Transport interface. --
  void set_handler(HostId id,
                   std::function<void(const Message&)> handler) override;
  /// `from` must be self. Self-sends loop back through the local queue
  /// (delivered on the next poll, like any other arrival).
  void send(HostId from, HostId to, Message msg) override;
  void broadcast(HostId from, const Message& msg) override;
  /// Real daemons burn real CPU; nothing to model.
  void stall(HostId, util::SimTime) override {}
  /// Monotonic wall clock, microseconds since transport construction.
  util::SimTime now() const override;

  // -- Real-socket surface. --

  /// The port the listen socket actually bound (resolves port 0).
  std::uint16_t listen_port() const noexcept { return listen_port_; }
  HostId self() const noexcept { return config_.self; }

  /// Install/replace a peer's dial address (grows the table as needed).
  /// Takes effect on the next reconnect cycle.
  void set_peer_address(HostId peer, std::string addr);

  /// One-shot real-clock timer; fires on the polling thread.
  void add_timer(util::SimTime delay, std::function<void()> fn);

  /// Service the loop once: wait up to `timeout_ms` for socket events,
  /// then run due timers, reconnects and the local delivery queue.
  /// Returns the number of frames delivered to the handler.
  std::size_t poll(int timeout_ms);

  /// poll() until stop() is called.
  void run();
  /// Safe from signal handlers: one eventfd write.
  void stop() noexcept;

  /// True when the outbound connection to `peer` is established.
  bool peer_connected(HostId peer) const noexcept;
  /// Established outbound connections.
  std::size_t connected_peers() const noexcept;
  /// Open socket fds of any kind (listen + in + out) — exported as the
  /// bcwan_p2p_tcp_open_sockets gauge.
  std::size_t open_sockets() const noexcept;

  const TcpStats& stats() const noexcept { return stats_; }

 private:
  struct Peer {
    std::string addr;           // "ip:port"; empty = unknown yet
    int fd = -1;                // outbound socket (connecting or connected)
    bool connected = false;     // three-way handshake finished
    unsigned attempt = 0;       // consecutive failed dials
    util::SimTime retry_at = 0; // next dial deadline (0 = dial asap)
    util::Bytes pending;        // encoded frames waiting for the socket
    std::size_t sent = 0;       // consumed prefix of `pending`
    FrameDecoder decoder;       // remote shouldn't write here, but if it
                                // does the bytes are validated like any
  };                            // inbound stream

  struct Inbound {
    int fd = -1;
    FrameDecoder decoder;
  };

  struct Timer {
    util::SimTime deadline;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Timer& o) const noexcept {
      return deadline != o.deadline ? deadline > o.deadline : seq > o.seq;
    }
  };

  void setup_listen();
  void dial(HostId peer);
  void on_dial_result(HostId peer, bool ok);
  void schedule_redial(HostId peer);
  void close_outbound(HostId peer, bool reschedule);
  void close_inbound(std::size_t idx);
  void enqueue(HostId peer, const util::Bytes& frame);
  void flush_pending(HostId peer);
  void on_readable_inbound(std::size_t idx);
  void on_readable_outbound(HostId peer);
  /// Drain a decoder after feeding it; returns false if the stream is
  /// poisoned and the connection must die.
  bool drain_decoder(FrameDecoder& decoder);
  void accept_all();
  void run_due_timers();
  void run_due_redials();
  std::size_t drain_local();
  void update_epoll_out(HostId peer);
  int epoll_timeout(int requested_ms) const;

  TcpTransportConfig config_;
  std::function<void(const Message&)> handler_;
  util::Rng jitter_rng_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop() / cross-thread wakeup
  std::uint16_t listen_port_ = 0;

  // A deque so Peer references stay valid when a handler callback grows the
  // table mid-event (send() to a brand-new HostId resizes it).
  std::deque<Peer> peers_;
  std::vector<std::unique_ptr<Inbound>> inbound_;

  std::vector<Timer> timers_;  // min-heap via std::greater
  std::uint64_t timer_seq_ = 0;

  std::vector<Message> local_;      // self-sends, delivered next poll
  std::vector<Message> local_now_;  // scratch for the draining pass

  std::int64_t t0_ns_ = 0;  // construction time, CLOCK_MONOTONIC
  std::atomic<bool> running_{false};
  TcpStats stats_;
  std::size_t delivered_this_poll_ = 0;
};

}  // namespace bcwan::p2p

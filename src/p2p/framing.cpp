#include "p2p/framing.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "store/crc32c.hpp"
#include "util/serial.hpp"

namespace bcwan::p2p {

namespace {

std::uint16_t read_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | p[1] << 8);
}

std::uint32_t read_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

util::Bytes encode_frame(const Message& msg, HostId from) {
  const std::string& type = msg.type.str();
  util::Writer w;
  w.u32(kFrameMagic);
  w.u16(kFrameVersion);
  w.u16(static_cast<std::uint16_t>(type.size()));
  w.u32(static_cast<std::uint32_t>(msg.payload.size()));
  w.u32(static_cast<std::uint32_t>(from));
  std::uint32_t crc = store::crc32c_extend(
      0, util::ByteView(reinterpret_cast<const std::uint8_t*>(type.data()),
                        type.size()));
  crc = store::crc32c_extend(crc, msg.payload);
  w.u32(crc);
  w.bytes(util::ByteView(reinterpret_cast<const std::uint8_t*>(type.data()),
                         type.size()));
  w.bytes(msg.payload);
  return w.take();
}

const char* frame_error_name(FrameError error) noexcept {
  switch (error) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad_magic";
    case FrameError::kBadVersion: return "bad_version";
    case FrameError::kOversized: return "oversized";
    case FrameError::kBadChecksum: return "bad_checksum";
  }
  return "unknown";
}

void FrameDecoder::feed(util::ByteView data) {
  if (poisoned()) return;  // connection is doomed; don't grow the buffer
  // Compact the consumed prefix before appending so the buffer never grows
  // past (one partial frame + this read).
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Message> FrameDecoder::next() {
  if (poisoned()) return std::nullopt;
  if (buf_.size() - pos_ < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* h = buf_.data() + pos_;
  if (read_u32(h) != kFrameMagic) {
    error_ = FrameError::kBadMagic;
    return std::nullopt;
  }
  if (read_u16(h + 4) != kFrameVersion) {
    error_ = FrameError::kBadVersion;
    return std::nullopt;
  }
  const std::size_t type_len = read_u16(h + 6);
  const std::size_t payload_len = read_u32(h + 8);
  if (type_len > kMaxFrameTypeLen || payload_len > kMaxFramePayload) {
    error_ = FrameError::kOversized;
    return std::nullopt;
  }
  const std::size_t body_len = type_len + payload_len;
  if (buf_.size() - pos_ < kFrameHeaderSize + body_len) return std::nullopt;
  const auto from = static_cast<HostId>(static_cast<std::int32_t>(
      read_u32(h + 12)));
  const std::uint32_t want_crc = read_u32(h + 16);
  const std::uint8_t* body = h + kFrameHeaderSize;
  if (store::crc32c(util::ByteView(body, body_len)) != want_crc) {
    error_ = FrameError::kBadChecksum;
    return std::nullopt;
  }
  Message msg;
  msg.type = std::string(reinterpret_cast<const char*>(body), type_len);
  msg.payload = util::Bytes(body + type_len, body + body_len);
  msg.from = from;
  pos_ += kFrameHeaderSize + body_len;
  return msg;
}

util::SimTime reconnect_backoff(unsigned attempt, util::Rng& rng,
                                util::SimTime base, util::SimTime cap) {
  util::SimTime delay = base;
  for (unsigned i = 0; i < attempt && delay < cap; ++i) delay *= 2;
  delay = std::min(delay, cap);
  const double jitter = 0.7 + 0.6 * rng.uniform();
  return std::max<util::SimTime>(1, static_cast<util::SimTime>(
                                        static_cast<double>(delay) * jitter));
}

}  // namespace bcwan::p2p

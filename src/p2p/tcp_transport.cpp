#include "p2p/tcp_transport.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace bcwan::p2p {

namespace {

// epoll_event.data.u64 tags: which object the event belongs to.
constexpr std::uint64_t kTagListen = 1;
constexpr std::uint64_t kTagWake = 2;
constexpr std::uint64_t kTagOut = 3;  // low 32 bits: HostId
constexpr std::uint64_t kTagIn = 4;   // low 32 bits: inbound_ slot

std::uint64_t tag(std::uint64_t kind, std::uint64_t idx) noexcept {
  return kind << 32 | idx;
}

struct ParsedAddr {
  sockaddr_in sin{};
  bool ok = false;
};

ParsedAddr parse_addr(const std::string& addr) {
  ParsedAddr out;
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos) return out;
  const std::string host = addr.substr(0, colon);
  const int port = std::atoi(addr.c_str() + colon + 1);
  if (port < 0 || port > 65535) return out;
  out.sin.sin_family = AF_INET;
  out.sin.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &out.sin.sin_addr) != 1) return out;
  out.ok = true;
  return out;
}

void count(const char* family, const char* help, std::uint64_t n = 1) {
  if (telemetry::enabled())
    telemetry::registry().counter(family, help).add(n);
}

void count_rejected(FrameError error) {
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_p2p_tcp_frames_rejected_total", "reason",
                 frame_error_name(error),
                 "Frames rejected by the TCP framing layer, by reason")
        .add();
  }
}

std::int64_t monotonic_ns() noexcept {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportConfig config)
    : config_(std::move(config)),
      jitter_rng_(util::Rng::substream(config_.seed,
                                       static_cast<std::uint64_t>(config_.self))),
      t0_ns_(monotonic_ns()) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("epoll_create1 failed");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw std::runtime_error("eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = tag(kTagWake, 0);
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  peers_.resize(config_.peers.size());
  for (std::size_t i = 0; i < config_.peers.size(); ++i)
    peers_[i].addr = config_.peers[i];
  if (config_.self >= 0 &&
      static_cast<std::size_t>(config_.self) < peers_.size())
    peers_[static_cast<std::size_t>(config_.self)].addr.clear();

  if (!config_.listen.empty()) setup_listen();
}

TcpTransport::~TcpTransport() {
  for (std::size_t i = 0; i < peers_.size(); ++i)
    close_outbound(static_cast<HostId>(i), /*reschedule=*/false);
  for (std::size_t i = 0; i < inbound_.size(); ++i) close_inbound(i);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void TcpTransport::setup_listen() {
  const ParsedAddr parsed = parse_addr(config_.listen);
  if (!parsed.ok)
    throw std::runtime_error("tcp transport: bad listen address '" +
                             config_.listen + "'");
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("tcp transport: socket failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&parsed.sin),
           sizeof(parsed.sin)) != 0) {
    throw std::runtime_error("tcp transport: bind(" + config_.listen +
                             ") failed: " + std::strerror(errno));
  }
  if (listen(listen_fd_, 64) != 0)
    throw std::runtime_error("tcp transport: listen failed");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  listen_port_ = ntohs(bound.sin_port);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = tag(kTagListen, 0);
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
}

void TcpTransport::set_handler(HostId id,
                               std::function<void(const Message&)> handler) {
  if (id != config_.self) return;  // one transport, one daemon
  handler_ = std::move(handler);
}

void TcpTransport::set_peer_address(HostId peer, std::string addr) {
  if (peer < 0 || peer == config_.self) return;
  if (static_cast<std::size_t>(peer) >= peers_.size())
    peers_.resize(static_cast<std::size_t>(peer) + 1);
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  p.addr = std::move(addr);
  p.retry_at = 0;  // dial on the next poll
  p.attempt = 0;
}

util::SimTime TcpTransport::now() const {
  return (monotonic_ns() - t0_ns_) / 1000;
}

void TcpTransport::send(HostId from, HostId to, Message msg) {
  if (from != config_.self) return;
  msg.from = from;
  if (msg.type.str().size() > kMaxFrameTypeLen ||
      msg.payload.size() > kMaxFramePayload) {
    ++stats_.queue_drops;
    count("bcwan_p2p_tcp_queue_dropped_total",
          "Frames dropped before the wire (queue cap or size limit)");
    return;
  }
  if (to == config_.self) {
    local_.push_back(std::move(msg));
    return;
  }
  enqueue(to, encode_frame(msg, from));
}

void TcpTransport::broadcast(HostId from, const Message& msg) {
  if (from != config_.self) return;
  if (msg.type.str().size() > kMaxFrameTypeLen ||
      msg.payload.size() > kMaxFramePayload) {
    ++stats_.queue_drops;
    count("bcwan_p2p_tcp_queue_dropped_total",
          "Frames dropped before the wire (queue cap or size limit)");
    return;
  }
  // One encode for the whole fan-out (the TCP analog of SharedPayload).
  const util::Bytes frame = encode_frame(msg, from);
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (static_cast<HostId>(i) == config_.self) continue;
    if (peers_[i].addr.empty()) continue;
    enqueue(static_cast<HostId>(i), frame);
  }
}

void TcpTransport::enqueue(HostId peer, const util::Bytes& frame) {
  if (peer < 0) return;
  if (static_cast<std::size_t>(peer) >= peers_.size())
    peers_.resize(static_cast<std::size_t>(peer) + 1);
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.pending.size() - p.sent + frame.size() > config_.max_queue_bytes) {
    ++stats_.queue_drops;
    count("bcwan_p2p_tcp_queue_dropped_total",
          "Frames dropped before the wire (queue cap or size limit)");
    return;
  }
  // Compact the consumed prefix before growing.
  if (p.sent > 0) {
    p.pending.erase(p.pending.begin(),
                    p.pending.begin() + static_cast<std::ptrdiff_t>(p.sent));
    p.sent = 0;
  }
  p.pending.insert(p.pending.end(), frame.begin(), frame.end());
  ++stats_.frames_out;
  count("bcwan_p2p_tcp_frames_out_total", "Frames queued for TCP peers");
  if (p.connected) flush_pending(peer);
}

void TcpTransport::flush_pending(HostId peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  while (p.sent < p.pending.size()) {
    const ssize_t n =
        ::send(p.fd, p.pending.data() + p.sent, p.pending.size() - p.sent,
               MSG_NOSIGNAL);
    if (n > 0) {
      p.sent += static_cast<std::size_t>(n);
      stats_.bytes_out += static_cast<std::uint64_t>(n);
      count("bcwan_p2p_tcp_bytes_out_total", "Bytes written to TCP peers",
            static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_outbound(peer, /*reschedule=*/true);  // torn write / dead peer
    return;
  }
  if (p.sent == p.pending.size()) {
    p.pending.clear();
    p.sent = 0;
  }
  update_epoll_out(peer);
}

void TcpTransport::update_epoll_out(HostId peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (!p.connected || p.sent < p.pending.size()) ev.events |= EPOLLOUT;
  ev.data.u64 = tag(kTagOut, static_cast<std::uint64_t>(peer));
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, p.fd, &ev);
}

void TcpTransport::dial(HostId peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.fd >= 0 || p.addr.empty()) return;
  const ParsedAddr parsed = parse_addr(p.addr);
  if (!parsed.ok) return;  // bad table entry; retried if re-set
  if (p.attempt > 0) {
    ++stats_.reconnect_attempts;
    count("bcwan_p2p_tcp_reconnect_attempts_total",
          "Outbound dial attempts after a connection failure");
  }
  p.fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (p.fd < 0) {
    schedule_redial(peer);
    return;
  }
  const int one = 1;
  setsockopt(p.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int rc = connect(p.fd, reinterpret_cast<const sockaddr*>(&parsed.sin),
                         sizeof(parsed.sin));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(p.fd);
    p.fd = -1;
    schedule_redial(peer);
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.u64 = tag(kTagOut, static_cast<std::uint64_t>(peer));
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, p.fd, &ev);
  if (rc == 0) on_dial_result(peer, true);
}

void TcpTransport::on_dial_result(HostId peer, bool ok) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (!ok) {
    close_outbound(peer, /*reschedule=*/true);
    return;
  }
  p.connected = true;
  p.attempt = 0;
  p.decoder = FrameDecoder();
  ++stats_.connects;
  count("bcwan_p2p_tcp_connects_total", "Outbound TCP connections established");
  if (telemetry::enabled()) {
    telemetry::registry()
        .gauge("bcwan_p2p_tcp_open_sockets", "Open TCP transport sockets")
        .set(static_cast<double>(open_sockets()));
  }
  flush_pending(peer);
}

void TcpTransport::schedule_redial(HostId peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  p.retry_at = now() + reconnect_backoff(p.attempt, jitter_rng_,
                                         config_.backoff_base,
                                         config_.backoff_cap);
  if (p.attempt < 31) ++p.attempt;
}

void TcpTransport::close_outbound(HostId peer, bool reschedule) {
  if (static_cast<std::size_t>(peer) >= peers_.size()) return;
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, p.fd, nullptr);
    ::close(p.fd);
    p.fd = -1;
  }
  p.connected = false;
  // Pending frames survive one reconnect cycle (bounded by the queue cap):
  // the next successful dial flushes them, and getblocks sync covers
  // anything dropped beyond the cap.
  if (reschedule) schedule_redial(peer);
  if (telemetry::enabled()) {
    telemetry::registry()
        .gauge("bcwan_p2p_tcp_open_sockets", "Open TCP transport sockets")
        .set(static_cast<double>(open_sockets()));
  }
}

void TcpTransport::close_inbound(std::size_t idx) {
  if (idx >= inbound_.size() || !inbound_[idx]) return;
  Inbound& in = *inbound_[idx];
  if (in.fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, in.fd, nullptr);
    ::close(in.fd);
  }
  inbound_[idx].reset();
  if (telemetry::enabled()) {
    telemetry::registry()
        .gauge("bcwan_p2p_tcp_open_sockets", "Open TCP transport sockets")
        .set(static_cast<double>(open_sockets()));
  }
}

void TcpTransport::accept_all() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN / transient error: nothing more to accept
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::size_t slot = inbound_.size();
    for (std::size_t i = 0; i < inbound_.size(); ++i) {
      if (!inbound_[i]) {
        slot = i;
        break;
      }
    }
    auto in = std::make_unique<Inbound>();
    in->fd = fd;
    if (slot == inbound_.size())
      inbound_.push_back(std::move(in));
    else
      inbound_[slot] = std::move(in);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = tag(kTagIn, slot);
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    ++stats_.accepts;
    count("bcwan_p2p_tcp_accepts_total", "Inbound TCP connections accepted");
    if (telemetry::enabled()) {
      telemetry::registry()
          .gauge("bcwan_p2p_tcp_open_sockets", "Open TCP transport sockets")
          .set(static_cast<double>(open_sockets()));
    }
  }
}

bool TcpTransport::drain_decoder(FrameDecoder& decoder) {
  while (auto msg = decoder.next()) {
    ++stats_.frames_in;
    ++delivered_this_poll_;
    count("bcwan_p2p_tcp_frames_in_total",
          "Frames decoded from TCP peers and delivered");
    if (handler_) handler_(*msg);
  }
  if (decoder.poisoned()) {
    ++stats_.frames_rejected;
    count_rejected(decoder.error());
    return false;
  }
  return true;
}

void TcpTransport::on_readable_inbound(std::size_t idx) {
  if (idx >= inbound_.size() || !inbound_[idx]) return;
  Inbound& in = *inbound_[idx];
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(in.fd, buf, sizeof(buf));
    if (n > 0) {
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      count("bcwan_p2p_tcp_bytes_in_total", "Bytes read from TCP peers",
            static_cast<std::uint64_t>(n));
      in.decoder.feed(util::ByteView(buf, static_cast<std::size_t>(n)));
      if (!drain_decoder(in.decoder)) {
        close_inbound(idx);  // garbage stream: drop, never crash
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    close_inbound(idx);  // EOF or hard error
    return;
  }
}

void TcpTransport::on_readable_outbound(HostId peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.fd < 0) return;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(p.fd, buf, sizeof(buf));
    if (n > 0) {
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      count("bcwan_p2p_tcp_bytes_in_total", "Bytes read from TCP peers",
            static_cast<std::uint64_t>(n));
      p.decoder.feed(util::ByteView(buf, static_cast<std::size_t>(n)));
      if (!drain_decoder(p.decoder)) {
        close_outbound(peer, /*reschedule=*/true);
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    close_outbound(peer, /*reschedule=*/true);  // peer went away
    return;
  }
}

void TcpTransport::add_timer(util::SimTime delay, std::function<void()> fn) {
  timers_.push_back(Timer{now() + std::max<util::SimTime>(0, delay),
                          timer_seq_++, std::move(fn)});
  std::push_heap(timers_.begin(), timers_.end(), std::greater<>{});
}

void TcpTransport::run_due_timers() {
  const util::SimTime t = now();
  while (!timers_.empty() && timers_.front().deadline <= t) {
    std::pop_heap(timers_.begin(), timers_.end(), std::greater<>{});
    Timer timer = std::move(timers_.back());
    timers_.pop_back();
    timer.fn();
  }
}

void TcpTransport::run_due_redials() {
  const util::SimTime t = now();
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Peer& p = peers_[i];
    if (p.fd >= 0 || p.addr.empty()) continue;
    if (static_cast<HostId>(i) == config_.self) continue;
    if (p.retry_at <= t) dial(static_cast<HostId>(i));
  }
}

std::size_t TcpTransport::drain_local() {
  std::size_t delivered = 0;
  while (!local_.empty()) {
    local_now_.swap(local_);
    for (Message& msg : local_now_) {
      ++delivered;
      if (handler_) handler_(msg);
    }
    local_now_.clear();
  }
  return delivered;
}

int TcpTransport::epoll_timeout(int requested_ms) const {
  util::SimTime next = std::numeric_limits<util::SimTime>::max();
  if (!timers_.empty()) next = timers_.front().deadline;
  for (const Peer& p : peers_) {
    if (p.fd < 0 && !p.addr.empty()) next = std::min(next, p.retry_at);
  }
  if (!local_.empty()) return 0;
  if (next == std::numeric_limits<util::SimTime>::max()) return requested_ms;
  const util::SimTime wait_us = std::max<util::SimTime>(0, next - now());
  const auto wait_ms = static_cast<int>(
      std::min<util::SimTime>(wait_us / 1000 + 1, requested_ms));
  return std::min(requested_ms, wait_ms);
}

std::size_t TcpTransport::poll(int timeout_ms) {
  delivered_this_poll_ = 0;
  run_due_redials();  // first poll dials the address table
  epoll_event events[64];
  const int n = epoll_wait(epoll_fd_, events, 64, epoll_timeout(timeout_ms));
  for (int i = 0; i < n; ++i) {
    const std::uint64_t kind = events[i].data.u64 >> 32;
    const auto idx = static_cast<std::uint32_t>(events[i].data.u64);
    if (kind == kTagWake) {
      std::uint64_t tmp;
      while (::read(wake_fd_, &tmp, sizeof(tmp)) > 0) {
      }
      continue;
    }
    if (kind == kTagListen) {
      accept_all();
      continue;
    }
    if (kind == kTagIn) {
      if (events[i].events & (EPOLLERR | EPOLLHUP))
        close_inbound(idx);
      else
        on_readable_inbound(idx);
      continue;
    }
    if (kind == kTagOut) {
      const auto peer = static_cast<HostId>(idx);
      Peer& p = peers_[idx];
      if (p.fd < 0) continue;  // closed earlier this poll
      if (!p.connected) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) || err != 0) {
          on_dial_result(peer, false);
          continue;
        }
        if (events[i].events & EPOLLOUT) on_dial_result(peer, true);
        continue;
      }
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        close_outbound(peer, /*reschedule=*/true);
        continue;
      }
      if (events[i].events & EPOLLIN) on_readable_outbound(peer);
      if (p.fd >= 0 && (events[i].events & EPOLLOUT)) flush_pending(peer);
    }
  }
  run_due_redials();
  run_due_timers();
  const std::size_t delivered = delivered_this_poll_ + drain_local();
  return delivered;
}

void TcpTransport::run() {
  running_.store(true, std::memory_order_relaxed);
  while (running_.load(std::memory_order_relaxed)) poll(50);
}

void TcpTransport::stop() noexcept {
  running_.store(false, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  // write() is async-signal-safe; the result only matters for lint.
  [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
}

bool TcpTransport::peer_connected(HostId peer) const noexcept {
  if (peer < 0 || static_cast<std::size_t>(peer) >= peers_.size())
    return false;
  return peers_[static_cast<std::size_t>(peer)].connected;
}

std::size_t TcpTransport::connected_peers() const noexcept {
  std::size_t n = 0;
  for (const Peer& p : peers_) n += p.connected ? 1 : 0;
  return n;
}

std::size_t TcpTransport::open_sockets() const noexcept {
  std::size_t n = listen_fd_ >= 0 ? 1 : 0;
  for (const Peer& p : peers_) n += p.fd >= 0 ? 1 : 0;
  for (const auto& in : inbound_) n += (in && in->fd >= 0) ? 1 : 0;
  return n;
}

}  // namespace bcwan::p2p

// Wire framing for the TCP transport.
//
// The sim backend hands Message objects across host boundaries in memory;
// the TCP backend has to survive an actual byte stream: torn writes, frames
// split across arbitrary read() boundaries, garbage from a confused or
// malicious peer. Every frame is length-prefixed and checksummed:
//
//   offset size field
//   0      4    magic        0xB3C7A901 (constant; catches desync/garbage)
//   4      2    version      kFrameVersion (catches incompatible peers)
//   6      2    type_len     length of the message-type string (<= 64)
//   8      4    payload_len  length of the payload (<= kMaxFramePayload)
//   12     4    from         sender HostId (two's complement, little-endian)
//   16     4    crc32c       over body = type bytes ++ payload bytes
//   20     ...  body
//
// All integers little-endian (matching util::Writer). Decoding never
// throws and never reads past the buffer: a malformed header poisons the
// decoder with a FrameError and the connection owner must drop the socket —
// a byte stream that has lost framing cannot be resynchronized safely.
#pragma once

#include <cstdint>
#include <optional>

#include "p2p/message.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bcwan::p2p {

constexpr std::uint32_t kFrameMagic = 0xB3C7A901u;
constexpr std::uint16_t kFrameVersion = 1;
constexpr std::size_t kFrameHeaderSize = 20;
constexpr std::size_t kMaxFrameTypeLen = 64;
constexpr std::size_t kMaxFramePayload = 4 * 1024 * 1024;

/// Serialize one message (the existing Message wire serialization rides in
/// the payload untouched; framing only wraps it).
util::Bytes encode_frame(const Message& msg, HostId from);

enum class FrameError {
  kNone,
  kBadMagic,
  kBadVersion,
  kOversized,   // type_len or payload_len beyond the caps
  kBadChecksum,
};
const char* frame_error_name(FrameError error) noexcept;

/// Incremental frame reassembly over an arbitrary-boundary byte stream.
/// feed() bytes as they arrive, then drain next() until it returns
/// std::nullopt. After any error the decoder is poisoned: next() keeps
/// returning std::nullopt and error() names the reason — drop the
/// connection and start a fresh decoder on reconnect.
class FrameDecoder {
 public:
  /// Append raw received bytes.
  void feed(util::ByteView data);

  /// Extract the next complete frame, or std::nullopt when more bytes are
  /// needed / the decoder is poisoned.
  std::optional<Message> next();

  FrameError error() const noexcept { return error_; }
  bool poisoned() const noexcept { return error_ != FrameError::kNone; }
  /// Bytes buffered but not yet consumed (backpressure accounting).
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  util::Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted on feed()
  FrameError error_ = FrameError::kNone;
};

/// Reconnect schedule: jittered exponential backoff. Attempt 0 waits
/// ~base, each further attempt doubles, capped at `cap`; the jitter factor
/// is uniform in [0.7, 1.3) drawn from `rng`, so a restarted cluster's
/// daemons don't reconnect in lockstep. Deterministic given (attempt, rng
/// state) — the schedule itself is unit-tested with a seeded Rng.
util::SimTime reconnect_backoff(unsigned attempt, util::Rng& rng,
                                util::SimTime base = 100 * util::kMillisecond,
                                util::SimTime cap = 5 * util::kSecond);

}  // namespace bcwan::p2p

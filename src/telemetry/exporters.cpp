#include "telemetry/exporters.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "telemetry/span.hpp"

namespace bcwan::telemetry {

namespace {

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string label_suffix(const MetricEntry& e) {
  if (e.label_key.empty()) return "";
  return "{" + e.label_key + "=\"" + e.label_value + "\"}";
}

/// JSON string escaping (metric names and label values are ASCII by
/// convention, but be safe).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || c == '_' || c == ':' || (digit && i > 0))) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || c == '_' || (digit && i > 0))) return false;
  }
  return true;
}

bool parse_sample_value(const std::string& v) {
  if (v == "+Inf" || v == "-Inf" || v == "NaN") return true;
  if (v.empty()) return false;
  char* end = nullptr;
  std::strtod(v.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::string render_prometheus(Registry& reg) {
  reg.collect();
  std::string out;
  std::string last_family;
  reg.visit([&](const MetricEntry& e) {
    if (e.family != last_family) {
      last_family = e.family;
      if (!e.help.empty())
        out += "# HELP " + e.family + " " + e.help + "\n";
      const char* type = e.type == MetricType::kCounter    ? "counter"
                         : e.type == MetricType::kGauge    ? "gauge"
                                                           : "histogram";
      out += "# TYPE " + e.family + " " + std::string(type) + "\n";
    }
    switch (e.type) {
      case MetricType::kCounter: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, e.counter->value());
        out += e.family + label_suffix(e) + " " + buf + "\n";
        break;
      }
      case MetricType::kGauge:
        out += e.family + label_suffix(e) + " " +
               format_double(e.gauge->value()) + "\n";
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *e.histogram;
        const std::string extra =
            e.label_key.empty()
                ? ""
                : e.label_key + "=\"" + e.label_value + "\",";
        std::uint64_t cum = 0;
        char buf[32];
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          const std::uint64_t in_bucket = h.bucket(i);
          const bool last = i + 1 == h.bucket_count();
          // Emit a bound whenever it adds information: any bucket with
          // observations, plus the mandatory +Inf bound.
          if (in_bucket == 0 && !last) continue;
          cum += in_bucket;
          std::snprintf(buf, sizeof buf, "%" PRIu64, cum);
          out += e.family + "_bucket{" + extra + "le=\"" +
                 format_double(h.upper_bound(i)) + "\"} " + buf + "\n";
        }
        out += e.family + "_sum" + label_suffix(e) + " " +
               format_double(h.sum()) + "\n";
        std::snprintf(buf, sizeof buf, "%" PRIu64, h.count());
        out += e.family + "_count" + label_suffix(e) + " " + buf + "\n";
        break;
      }
    }
  });
  return out;
}

std::optional<std::string> validate_prometheus(const std::string& text) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    ++line_no;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    auto fail = [&](const std::string& why) {
      return "line " + std::to_string(line_no) + ": " + why + ": " + line;
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# HELP <name> <text>" and "# TYPE <name> <type>" comments are
      // emitted by exporters; free-form comments are tolerated by Prometheus
      // but a malformed HELP/TYPE is a bug we want CI to catch.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const std::size_t name_start = 7;
        const std::size_t name_end = line.find(' ', name_start);
        if (name_end == std::string::npos)
          return fail("HELP/TYPE line missing body");
        if (!valid_metric_name(line.substr(name_start, name_end - name_start)))
          return fail("bad metric name in HELP/TYPE");
        if (line.rfind("# TYPE ", 0) == 0) {
          const std::string t = line.substr(name_end + 1);
          if (t != "counter" && t != "gauge" && t != "histogram" &&
              t != "summary" && t != "untyped")
            return fail("unknown TYPE");
        }
      }
      continue;
    }
    // Sample line: name[{labels}] value [timestamp]
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (!valid_metric_name(line.substr(0, i)))
      return fail("bad metric name");
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string::npos) return fail("unterminated label set");
      // label="value" pairs, comma separated.
      std::size_t p = i + 1;
      while (p < close) {
        const std::size_t eq = line.find('=', p);
        if (eq == std::string::npos || eq > close)
          return fail("label pair missing '='");
        if (!valid_label_name(line.substr(p, eq - p)))
          return fail("bad label name");
        if (eq + 1 >= close || line[eq + 1] != '"')
          return fail("label value not quoted");
        std::size_t q = eq + 2;
        while (q < close && line[q] != '"') {
          if (line[q] == '\\') ++q;  // escaped char inside label value
          ++q;
        }
        if (q >= close) return fail("unterminated label value");
        p = q + 1;
        if (p < close) {
          if (line[p] != ',') return fail("missing ',' between labels");
          ++p;
        }
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ')
      return fail("missing space before value");
    const std::string rest = line.substr(i + 1);
    const std::size_t space = rest.find(' ');
    const std::string value =
        space == std::string::npos ? rest : rest.substr(0, space);
    if (!parse_sample_value(value)) return fail("unparseable sample value");
    if (space != std::string::npos) {
      // Optional timestamp: integer milliseconds.
      const std::string ts = rest.substr(space + 1);
      if (ts.empty() ||
          ts.find_first_not_of("-0123456789") != std::string::npos)
        return fail("bad timestamp");
    }
  }
  return std::nullopt;
}

std::string render_json(Registry& reg, bool include_spans) {
  reg.collect();
  std::string counters, gauges, histograms;
  reg.visit([&](const MetricEntry& e) {
    const std::string key =
        "\"" + json_escape(e.family + label_suffix(e)) + "\"";
    switch (e.type) {
      case MetricType::kCounter: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, e.counter->value());
        counters += (counters.empty() ? "" : ",\n    ") + key + ": " + buf;
        break;
      }
      case MetricType::kGauge:
        gauges += (gauges.empty() ? "" : ",\n    ") + key + ": " +
                  format_double(e.gauge->value());
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *e.histogram;
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, h.count());
        std::string entry = key + ": {\"count\": " + std::string(buf);
        entry += ", \"sum\": " + format_double(h.sum());
        entry += ", \"min\": " + format_double(h.observed_min());
        entry += ", \"max\": " + format_double(h.observed_max());
        entry += ", \"quantiles\": {\"p50\": " + format_double(h.quantile(0.5));
        entry += ", \"p90\": " + format_double(h.quantile(0.9));
        entry += ", \"p99\": " + format_double(h.quantile(0.99));
        entry += ", \"p999\": " + format_double(h.quantile(0.999)) + "}}";
        histograms += (histograms.empty() ? "" : ",\n    ") + entry;
        break;
      }
    }
  });
  std::string out = "{\n";
  out += "  \"counters\": {\n    " + counters + "\n  },\n";
  out += "  \"gauges\": {\n    " + gauges + "\n  },\n";
  out += "  \"histograms\": {\n    " + histograms + "\n  }";
  if (include_spans) {
    std::string spans;
    for (const SpanRecord& s : recent_spans()) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "{\"name\": \"%s\", \"parent\": \"%s\", \"depth\": %u, "
                    "\"start_ns\": %" PRIu64 ", \"duration_ns\": %" PRIu64
                    ", \"thread\": %u}",
                    json_escape(s.name).c_str(), json_escape(s.parent).c_str(),
                    s.depth, s.start_ns, s.duration_ns, s.thread_slot);
      spans += (spans.empty() ? "" : ",\n    ") + std::string(buf);
    }
    out += ",\n  \"spans\": [\n    " + spans + "\n  ]";
  }
  out += "\n}\n";
  return out;
}

bool write_json_snapshot(const std::string& path, Registry& reg,
                         bool include_spans) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = render_json(reg, include_spans);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

}  // namespace bcwan::telemetry

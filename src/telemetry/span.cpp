#include "telemetry/span.hpp"

#include <array>
#include <mutex>

namespace bcwan::telemetry {

namespace {

thread_local Span* t_current_span = nullptr;

std::chrono::steady_clock::time_point telemetry_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

struct SpanRing {
  std::mutex mutex;
  std::array<SpanRecord, kSpanRingCapacity> records;
  std::uint64_t total = 0;  // monotone count of pushes
};

SpanRing& span_ring() {
  static SpanRing* ring = new SpanRing();  // leaked: outlives all users
  return *ring;
}

}  // namespace

Span::Span(const char* name, Histogram* histogram) noexcept
    : name_(name), histogram_(histogram) {
  if (!enabled()) return;
  active_ = true;
  parent_ = t_current_span;
  depth_ = parent_ != nullptr ? parent_->depth_ + 1 : 0;
  t_current_span = this;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  t_current_span = parent_;
  const auto duration =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_);
  if (histogram_ != nullptr) {
    histogram_->observe(
        std::chrono::duration<double>(end - start_).count());
  }
  SpanRecord record;
  record.name = name_;
  record.parent = parent_ != nullptr ? parent_->name_ : "";
  record.depth = depth_;
  record.start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start_ -
                                                           telemetry_epoch())
          .count());
  record.duration_ns = static_cast<std::uint64_t>(duration.count());
  record.thread_slot = detail::thread_slot();
  SpanRing& ring = span_ring();
  std::lock_guard lock(ring.mutex);
  ring.records[ring.total % kSpanRingCapacity] = std::move(record);
  ++ring.total;
}

std::vector<SpanRecord> recent_spans() {
  SpanRing& ring = span_ring();
  std::lock_guard lock(ring.mutex);
  const std::uint64_t n = std::min<std::uint64_t>(ring.total,
                                                  kSpanRingCapacity);
  std::vector<SpanRecord> out;
  out.reserve(n);
  for (std::uint64_t i = ring.total - n; i < ring.total; ++i)
    out.push_back(ring.records[i % kSpanRingCapacity]);
  return out;
}

std::uint64_t spans_recorded() {
  SpanRing& ring = span_ring();
  std::lock_guard lock(ring.mutex);
  return ring.total;
}

void clear_spans() {
  SpanRing& ring = span_ring();
  std::lock_guard lock(ring.mutex);
  ring.total = 0;
}

}  // namespace bcwan::telemetry

#include "telemetry/flusher.hpp"

#include <cstdio>

#include "telemetry/exporters.hpp"

namespace bcwan::telemetry {

namespace {

bool write_atomically(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  if (!ok) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

Flusher::Flusher(Options options) : options_(std::move(options)) {
  thread_ = std::thread([this] { run(); });
}

Flusher::~Flusher() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  flush_now();
}

void Flusher::flush_now() {
  if (!options_.json_path.empty())
    write_atomically(options_.json_path,
                     render_json(registry(), options_.include_spans));
  if (!options_.prom_path.empty())
    write_atomically(options_.prom_path, render_prometheus(registry()));
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

void Flusher::run() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.interval, [this] { return stop_; }))
      break;
    lock.unlock();
    flush_now();
    lock.lock();
  }
}

}  // namespace bcwan::telemetry

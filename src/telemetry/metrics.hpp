// Process-wide telemetry: metric registry, lock-free counters/gauges and
// log-bucketed latency histograms.
//
// Design constraints (DESIGN.md §10):
//   * near-zero cost when disabled — every mutation checks a single relaxed
//     atomic flag first, and when the library is compiled out
//     (-DBCWAN_TELEMETRY_DISABLED / cmake -DBCWAN_TELEMETRY=OFF) enabled()
//     is a constexpr false, so the optimizer deletes the instrumentation
//     outright;
//   * lock-free hot path — counters are sharded over cache-line-padded
//     atomics indexed by a per-thread slot, gauges are single atomics,
//     histogram buckets are atomics; nothing on a mutation path takes a
//     lock or allocates;
//   * one process-wide Registry — metrics are identified by family name
//     plus an optional single label pair (e.g. bcwan_exchange_phase_seconds
//     {phase="uplink"}); repeated registration returns the same object, so
//     call sites cache a reference in a function-local static.
//
// Naming convention: every metric family starts with `bcwan_`, uses
// snake_case, and counters end in `_total`; latency histograms end in
// `_seconds` and observe seconds as doubles.
//
// Multi-node simulations share the one process-wide registry: node-level
// gauges (mempool depth, UTXO size, directory entries) then carry the most
// recently updated node's value, while counters and histograms aggregate
// across all nodes — exactly what a fleet-level scrape of the federation
// would see.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace bcwan::telemetry {

#ifdef BCWAN_TELEMETRY_DISABLED
constexpr bool compiled_in() noexcept { return false; }
constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#else
constexpr bool compiled_in() noexcept { return true; }

namespace detail {
std::atomic<bool>& enabled_flag() noexcept;
}  // namespace detail

/// Runtime master switch. Defaults to off unless the BCWAN_TELEMETRY
/// environment variable is set to a non-"0" value at process start.
inline bool enabled() noexcept {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}
#endif

namespace detail {
/// Small dense per-thread slot for shard selection (first use of telemetry
/// on a thread claims the next slot; slots wrap modulo the shard count).
unsigned thread_slot() noexcept;
}  // namespace detail

/// Monotonic event counter, sharded so concurrent writers on different
/// threads never contend on one cache line.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    shards_[detail::thread_slot() % kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_)
      total += s.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-value gauge (double). set() is a plain store; add() is an atomic
/// floating-point RMW (C++20).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double d) noexcept {
    if (!enabled()) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram: bucket 0 holds observations <= `min`, bucket i
/// holds (min*factor^(i-1), min*factor^i], and the last bucket is the
/// +Inf overflow. Defaults cover 1 µs .. ~13 days at x√2 resolution (~6%
/// relative quantile error). Observation is one relaxed fetch_add plus a
/// log2; quantiles interpolate linearly inside the winning bucket and clamp
/// to the observed min/max, so they are monotone in q by construction.
class Histogram {
 public:
  struct Options {
    double min = 1e-6;
    double factor = 1.4142135623730951;  // sqrt(2)
    std::size_t buckets = 80;
  };

  Histogram();
  explicit Histogram(Options options);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double observed_min() const noexcept;
  double observed_max() const noexcept;

  /// q in [0, 1]. Returns 0 when empty.
  double quantile(double q) const noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  /// Inclusive upper bound of bucket i (+Inf for the last bucket).
  double upper_bound(std::size_t i) const noexcept;
  std::uint64_t bucket(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  std::size_t bucket_index(double v) const noexcept;

  Options options_;
  double inv_log_factor_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One registered metric instance: a family name, an optional single label
/// pair, and the metric object (exactly one of the pointers is set).
struct MetricEntry {
  std::string family;
  std::string help;
  std::string label_key;    // empty when unlabelled
  std::string label_value;
  MetricType type = MetricType::kCounter;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

/// Process-wide metric registry. Registration is idempotent: the same
/// (family, label) pair always returns the same object, so instrumented
/// code may call counter()/gauge()/histogram() on every hit or cache the
/// reference — both are correct. Returned references stay valid for the
/// process lifetime.
class Registry {
 public:
  Counter& counter(const std::string& family, const std::string& help = "");
  Counter& counter(const std::string& family, const std::string& label_key,
                   const std::string& label_value,
                   const std::string& help = "");
  Gauge& gauge(const std::string& family, const std::string& help = "");
  Gauge& gauge(const std::string& family, const std::string& label_key,
               const std::string& label_value, const std::string& help = "");
  Histogram& histogram(const std::string& family,
                       const std::string& help = "",
                       Histogram::Options options = Histogram::Options());
  Histogram& histogram(const std::string& family,
                       const std::string& label_key,
                       const std::string& label_value,
                       const std::string& help = "",
                       Histogram::Options options = Histogram::Options());

  /// Collectors bridge externally maintained state (cache hit counters,
  /// per-scenario aggregates) into gauges right before an export. They run
  /// on the exporting thread; owners of non-thread-safe state must remove
  /// their collector before that state dies (see ~Scenario).
  std::uint64_t add_collector(std::function<void()> fn);
  void remove_collector(std::uint64_t id);
  /// Run every collector (exporters call this before reading metrics).
  void collect();

  /// Visit all entries sorted by (family, label_value). Entries are
  /// address-stable; the visitor must not register metrics.
  void visit(const std::function<void(const MetricEntry&)>& fn) const;

  std::size_t size() const;

  /// Zero every metric value; registrations survive (bench ablations and
  /// tests that want a clean slate without invalidating cached references).
  void reset_all();

 private:
  MetricEntry& entry(const std::string& family, const std::string& label_key,
                     const std::string& label_value, const std::string& help,
                     MetricType type, const Histogram::Options* options);

  mutable std::shared_mutex mutex_;
  // Key: family + '\x01' + label_value (one label per family by
  // convention, so the pair is unique).
  std::vector<std::unique_ptr<MetricEntry>> entries_;

  mutable std::mutex collector_mutex_;
  std::vector<std::pair<std::uint64_t, std::function<void()>>> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

/// The process-wide registry.
Registry& registry();

}  // namespace bcwan::telemetry

// Optional periodic exporter thread.
//
// A Flusher wakes on a fixed wall-clock interval and writes the current
// registry state to a JSON snapshot file and/or a Prometheus text file
// (atomically: rendered to <path>.tmp, then renamed). Long-running daemons
// point a scraper or tail at the files; short-lived benches call
// flush_now() or skip the thread and export directly.
//
// CAUTION: collectors run on the flusher thread. A collector reading
// non-thread-safe state (e.g. a live Scenario) must not be combined with a
// running Flusher; export from the owning thread instead.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/metrics.hpp"

namespace bcwan::telemetry {

class Flusher {
 public:
  struct Options {
    std::chrono::milliseconds interval{1000};
    std::string json_path;   // empty: skip the JSON snapshot
    std::string prom_path;   // empty: skip the Prometheus text file
    bool include_spans = false;
  };

  /// Starts the thread immediately; the first flush happens one interval in.
  explicit Flusher(Options options);
  /// Final flush, then stop and join.
  ~Flusher();

  Flusher(const Flusher&) = delete;
  Flusher& operator=(const Flusher&) = delete;

  /// Synchronous export on the calling thread.
  void flush_now();

  std::uint64_t flushes() const noexcept {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  Options options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> flushes_{0};
  std::thread thread_;
};

}  // namespace bcwan::telemetry

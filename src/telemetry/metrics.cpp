#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace bcwan::telemetry {

#ifndef BCWAN_TELEMETRY_DISABLED
namespace detail {

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("BCWAN_TELEMETRY");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }()};
  return flag;
}

}  // namespace detail
#endif

namespace detail {

unsigned thread_slot() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local unsigned slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram() : Histogram(Options()) {}

Histogram::Histogram(Options options)
    : options_(options),
      inv_log_factor_(1.0 / std::log(options.factor)),
      counts_(std::max<std::size_t>(options.buckets, 2)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

std::size_t Histogram::bucket_index(double v) const noexcept {
  if (!(v > options_.min)) return 0;
  const double pos = std::log(v / options_.min) * inv_log_factor_;
  const auto idx = static_cast<std::size_t>(std::ceil(pos));
  return std::min(idx, counts_.size() - 1);
}

void Histogram::observe(double v) noexcept {
  if (!enabled()) return;
  if (std::isnan(v)) return;
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // Monotone CAS loops for the observed extrema.
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::observed_min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::observed_max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::upper_bound(std::size_t i) const noexcept {
  if (i + 1 >= counts_.size())
    return std::numeric_limits<double>::infinity();
  if (i == 0) return options_.min;
  return options_.min * std::pow(options_.factor, static_cast<double>(i));
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      const double lower = i == 0 ? 0.0 : upper_bound(i - 1);
      double upper = upper_bound(i);
      if (!std::isfinite(upper)) upper = std::max(observed_max(), lower);
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      const double v = lower + frac * (upper - lower);
      return std::clamp(v, observed_min(), observed_max());
    }
    cum += in_bucket;
  }
  return observed_max();
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

MetricEntry& Registry::entry(const std::string& family,
                             const std::string& label_key,
                             const std::string& label_value,
                             const std::string& help, MetricType type,
                             const Histogram::Options* options) {
  {
    std::shared_lock lock(mutex_);
    for (const auto& e : entries_) {
      if (e->family == family && e->label_value == label_value) return *e;
    }
  }
  std::unique_lock lock(mutex_);
  for (const auto& e : entries_) {
    if (e->family == family && e->label_value == label_value) return *e;
  }
  auto e = std::make_unique<MetricEntry>();
  e->family = family;
  e->help = help;
  e->label_key = label_key;
  e->label_value = label_value;
  e->type = type;
  switch (type) {
    case MetricType::kCounter:
      e->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      e->histogram = std::make_unique<Histogram>(
          options != nullptr ? *options : Histogram::Options{});
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& family,
                           const std::string& help) {
  return *entry(family, "", "", help, MetricType::kCounter, nullptr).counter;
}

Counter& Registry::counter(const std::string& family,
                           const std::string& label_key,
                           const std::string& label_value,
                           const std::string& help) {
  return *entry(family, label_key, label_value, help, MetricType::kCounter,
                nullptr)
              .counter;
}

Gauge& Registry::gauge(const std::string& family, const std::string& help) {
  return *entry(family, "", "", help, MetricType::kGauge, nullptr).gauge;
}

Gauge& Registry::gauge(const std::string& family, const std::string& label_key,
                       const std::string& label_value,
                       const std::string& help) {
  return *entry(family, label_key, label_value, help, MetricType::kGauge,
                nullptr)
              .gauge;
}

Histogram& Registry::histogram(const std::string& family,
                               const std::string& help,
                               Histogram::Options options) {
  return *entry(family, "", "", help, MetricType::kHistogram, &options)
              .histogram;
}

Histogram& Registry::histogram(const std::string& family,
                               const std::string& label_key,
                               const std::string& label_value,
                               const std::string& help,
                               Histogram::Options options) {
  return *entry(family, label_key, label_value, help, MetricType::kHistogram,
                &options)
              .histogram;
}

std::uint64_t Registry::add_collector(std::function<void()> fn) {
  std::lock_guard lock(collector_mutex_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void Registry::remove_collector(std::uint64_t id) {
  std::lock_guard lock(collector_mutex_);
  std::erase_if(collectors_, [id](const auto& c) { return c.first == id; });
}

void Registry::collect() {
  // Copy under the lock, run without it: collectors register gauges, which
  // takes the metrics mutex, and may themselves add/remove collectors.
  std::vector<std::function<void()>> fns;
  {
    std::lock_guard lock(collector_mutex_);
    fns.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) fns.push_back(fn);
  }
  for (const auto& fn : fns) fn();
}

void Registry::visit(
    const std::function<void(const MetricEntry&)>& fn) const {
  std::vector<const MetricEntry*> sorted;
  {
    std::shared_lock lock(mutex_);
    sorted.reserve(entries_.size());
    for (const auto& e : entries_) sorted.push_back(e.get());
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricEntry* a, const MetricEntry* b) {
              if (a->family != b->family) return a->family < b->family;
              return a->label_value < b->label_value;
            });
  for (const MetricEntry* e : sorted) fn(*e);
}

std::size_t Registry::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

void Registry::reset_all() {
  std::shared_lock lock(mutex_);
  for (const auto& e : entries_) {
    switch (e->type) {
      case MetricType::kCounter: e->counter->reset(); break;
      case MetricType::kGauge: e->gauge->reset(); break;
      case MetricType::kHistogram: e->histogram->reset(); break;
    }
  }
}

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

}  // namespace bcwan::telemetry

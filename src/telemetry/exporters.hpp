// Telemetry exporters: Prometheus text exposition and a structured JSON
// snapshot, plus a strict validator for the Prometheus format (used by the
// tests and the CI scrape smoke step).
//
// Both exporters first run the registry's collectors, so gauges bridged
// from external state (cache hit rates, scenario aggregates) are fresh at
// render time.
#pragma once

#include <optional>
#include <string>

#include "telemetry/metrics.hpp"

namespace bcwan::telemetry {

/// Prometheus text exposition format 0.0.4: # HELP / # TYPE headers, one
/// sample line per counter/gauge, and cumulative _bucket/_sum/_count series
/// per histogram.
std::string render_prometheus(Registry& reg = registry());

/// Strict line-by-line check of a Prometheus text exposition: well-formed
/// comment lines, legal metric names and label syntax, parseable sample
/// values. Returns the first offending line's description, or std::nullopt
/// when the whole document is clean.
std::optional<std::string> validate_prometheus(const std::string& text);

/// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
/// {name: {count, sum, min, max, quantiles {p50, p90, p99, p999}}}, and
/// optionally the recent span ring}. Labelled instances render under the
/// key `family{key="value"}`.
std::string render_json(Registry& reg = registry(),
                        bool include_spans = false);

/// Write render_json() to `path`. Returns false when the file cannot be
/// opened.
bool write_json_snapshot(const std::string& path,
                         Registry& reg = registry(),
                         bool include_spans = false);

}  // namespace bcwan::telemetry

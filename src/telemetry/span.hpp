// RAII trace spans / scoped timers with parent-child nesting.
//
// A Span measures the wall-clock time between its construction and
// destruction, optionally feeds the duration (in seconds) into a Histogram,
// and records a SpanRecord — name, parent, nesting depth, start offset and
// duration — into a bounded process-wide ring buffer for debugging and the
// JSON exporter. Nesting is tracked per thread: the innermost live Span on
// the constructing thread becomes the parent.
//
// When telemetry is runtime-disabled the constructor reads one atomic flag
// and does nothing else (no clock read, no ring push); when compiled out it
// folds to nothing.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace bcwan::telemetry {

struct SpanRecord {
  std::string name;
  std::string parent;      // empty for root spans
  unsigned depth = 0;      // 0 for root spans
  std::uint64_t start_ns = 0;  // since process telemetry epoch
  std::uint64_t duration_ns = 0;
  unsigned thread_slot = 0;
};

class Span {
 public:
  /// `name` must outlive the span (string literals at call sites).
  /// `histogram`, when non-null, receives the duration in seconds.
  explicit Span(const char* name, Histogram* histogram = nullptr) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return active_; }
  unsigned depth() const noexcept { return depth_; }

 private:
  const char* name_;
  Histogram* histogram_;
  Span* parent_ = nullptr;
  unsigned depth_ = 0;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_{};
};

/// Copy of the most recent completed spans, oldest first. The buffer is
/// bounded (kSpanRingCapacity); older records are overwritten.
constexpr std::size_t kSpanRingCapacity = 1024;
std::vector<SpanRecord> recent_spans();
std::uint64_t spans_recorded();
void clear_spans();

}  // namespace bcwan::telemetry

// Script execution engine.
//
// Executes scriptSig then scriptPubKey on a shared stack, Bitcoin-0.10
// style, with BIP-65 OP_CHECKLOCKTIMEVERIFY and the BcWAN custom operator
// OP_CHECKRSA512PAIR. Signature verification is delegated through the
// SignatureChecker interface so the engine has no dependency on transaction
// layout — the chain module supplies a checker that hashes the spending
// transaction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "script/script.hpp"
#include "util/bytes.hpp"

namespace bcwan::script {

/// Why execution failed — tests assert specific causes.
enum class ScriptError {
  kOk,
  kEvalFalse,           // ran to completion but left false/empty on top
  kBadOpcode,           // unknown/disabled opcode executed
  kMalformedScript,     // truncated push
  kScriptSize,          // program exceeds kMaxScriptSize
  kPushSize,            // element exceeds kMaxElementSize
  kStackUnderflow,
  kStackOverflow,
  kOpCount,             // more than kMaxOpsPerScript operators
  kUnbalancedConditional,
  kVerifyFailed,        // OP_VERIFY / *_VERIFY variant failed
  kOpReturn,            // OP_RETURN executed
  kBadNumber,           // non-minimal or oversized CScriptNum
  kNegativeLocktime,
  kUnsatisfiedLocktime,
  kSigPushOnly,         // scriptSig contained non-push opcodes
};

std::string script_error_name(ScriptError err);

/// Non-push operator budget per script (Bitcoin's 201).
constexpr std::size_t kMaxOpsPerScript = 201;
constexpr std::size_t kMaxStackSize = 1000;

/// Transaction-context callback for OP_CHECKSIG.
class SignatureChecker {
 public:
  virtual ~SignatureChecker() = default;
  /// True iff `sig` is a valid signature by `pubkey` over the spending
  /// transaction (implementation defines the sighash).
  virtual bool check_sig(util::ByteView sig, util::ByteView pubkey) const = 0;
  /// The spending transaction's nLockTime.
  virtual std::int64_t tx_locktime() const = 0;
  /// True if the spending input's sequence disables locktime checks.
  virtual bool input_sequence_final() const = 0;
};

/// A checker that fails every signature — for contexts with no transaction.
class NullSignatureChecker : public SignatureChecker {
 public:
  bool check_sig(util::ByteView, util::ByteView) const override {
    return false;
  }
  std::int64_t tx_locktime() const override { return 0; }
  bool input_sequence_final() const override { return true; }
};

struct ExecResult {
  ScriptError error = ScriptError::kOk;
  bool ok() const noexcept { return error == ScriptError::kOk; }
  /// Final stack (top = back) — the fair-exchange watcher reads revealed
  /// values (eSk) from here and from the scriptSig pushes.
  std::vector<util::Bytes> stack;
};

/// Execute a single script on an existing stack.
ExecResult eval_script(const Script& script, std::vector<util::Bytes> stack,
                       const SignatureChecker& checker);

/// Full spend check: scriptSig must be push-only; then scriptPubKey runs on
/// the resulting stack; spend is valid iff the final top element is true.
ExecResult verify_spend(const Script& script_sig, const Script& script_pubkey,
                        const SignatureChecker& checker);

/// Bitcoin truthiness: false = empty, all-zero, or negative zero.
bool cast_to_bool(util::ByteView value) noexcept;

}  // namespace bcwan::script

// Standard script templates used by BcWAN transactions.
//
// Three output shapes exist in the system:
//   * P2PKH          — ordinary payments and mining rewards;
//   * OP_RETURN data — the gateway directory (§4.3/§5.1: "We used the
//                      OP_RETURN script operator ... which allows to publish
//                      arbitrary data inside the output of a transaction");
//   * ephemeral-key-release — the paper's Listing 1 fair-exchange contract.
//
// Listing 1, verbatim from the paper:
//     <rsaPubKey>
//     OP_CHECKRSA512PAIR
//     OP_IF
//       OP_DUP OP_HASH160 <pubKeyHash> OP_EQUALVERIFY
//     OP_ELSE
//       <block_height+100> OP_CHECKLOCKTIMEVERIFY OP_VERIFY
//       OP_DUP OP_HASH160 <buyerPubkeyHash> OP_EQUALVERIFY
//     OP_ENDIF
//     OP_CHECKSIG
//
// The gateway redeems by revealing the ephemeral RSA private key (eSk) in
// its scriptSig; the buyer (recipient) reclaims after the timeout by pushing
// a dummy in the eSk slot, failing OP_CHECKRSA512PAIR into the CLTV branch.
#pragma once

#include <array>
#include <optional>

#include "crypto/ripemd160.hpp"
#include "crypto/rsa.hpp"
#include "script/script.hpp"
#include "util/bytes.hpp"

namespace bcwan::script {

using PubKeyHash = std::array<std::uint8_t, 20>;

/// OP_DUP OP_HASH160 <hash> OP_EQUALVERIFY OP_CHECKSIG
Script make_p2pkh(const PubKeyHash& hash);

/// <sig> <pubkey>
Script make_p2pkh_scriptsig(util::ByteView sig, util::ByteView pubkey);

/// OP_RETURN <data> — provably unspendable data carrier.
Script make_op_return(util::ByteView data);

/// Listing 1 — ephemeral private key release contract.
/// `gateway_pkh` is the seller that reveals eSk; `buyer_pkh` reclaims after
/// `timeout_height` (the paper uses current height + 100).
Script make_key_release(const crypto::RsaPublicKey& ephemeral_pub,
                        const PubKeyHash& gateway_pkh,
                        const PubKeyHash& buyer_pkh,
                        std::int64_t timeout_height);

/// Gateway redeem input: <sig> <pubkey> <eSk serialized>.
Script make_key_release_redeem(util::ByteView sig, util::ByteView pubkey,
                               const crypto::RsaPrivateKey& ephemeral_priv);

/// Buyer timeout-reclaim input: <sig> <pubkey> <dummy>.
Script make_key_release_reclaim(util::ByteView sig, util::ByteView pubkey);

enum class ScriptType {
  kP2pkh,
  kOpReturn,
  kKeyRelease,
  kNonStandard,
};

/// Decoded view of a standard output script.
struct ClassifiedScript {
  ScriptType type = ScriptType::kNonStandard;
  // kP2pkh: the destination hash. kKeyRelease: the gateway (reveal-path) hash.
  PubKeyHash pubkey_hash{};
  // kKeyRelease only.
  PubKeyHash buyer_pubkey_hash{};
  std::optional<crypto::RsaPublicKey> ephemeral_pub;
  std::int64_t timeout_height = 0;
  // kOpReturn only.
  util::Bytes data;
};

ClassifiedScript classify(const Script& script);

/// Pulls the revealed ephemeral private key out of a redeem scriptSig —
/// this is how the recipient learns eSk once the gateway's spend hits the
/// chain/mempool (protocol step 10).
std::optional<crypto::RsaPrivateKey> extract_revealed_key(
    const Script& script_sig);

/// HASH160 of an encoded public key, as a fixed array.
PubKeyHash to_pubkey_hash(util::ByteView pubkey_encoded);

}  // namespace bcwan::script

#include "script/script.hpp"

#include <stdexcept>

namespace bcwan::script {

namespace {
constexpr std::uint8_t kOp0 = static_cast<std::uint8_t>(Opcode::OP_0);
constexpr std::uint8_t kOp1 = static_cast<std::uint8_t>(Opcode::OP_1);
constexpr std::uint8_t kOp16 = static_cast<std::uint8_t>(Opcode::OP_16);
constexpr std::uint8_t kPushData1 =
    static_cast<std::uint8_t>(Opcode::OP_PUSHDATA1);
constexpr std::uint8_t kPushData2 =
    static_cast<std::uint8_t>(Opcode::OP_PUSHDATA2);
constexpr std::uint8_t kPushData4 =
    static_cast<std::uint8_t>(Opcode::OP_PUSHDATA4);
}  // namespace

std::string opcode_name(std::uint8_t byte) {
  if (byte >= 0x01 && byte <= 0x4b) return "PUSH(" + std::to_string(byte) + ")";
  switch (static_cast<Opcode>(byte)) {
    case Opcode::OP_0: return "OP_0";
    case Opcode::OP_PUSHDATA1: return "OP_PUSHDATA1";
    case Opcode::OP_PUSHDATA2: return "OP_PUSHDATA2";
    case Opcode::OP_PUSHDATA4: return "OP_PUSHDATA4";
    case Opcode::OP_1NEGATE: return "OP_1NEGATE";
    case Opcode::OP_NOP: return "OP_NOP";
    case Opcode::OP_IF: return "OP_IF";
    case Opcode::OP_NOTIF: return "OP_NOTIF";
    case Opcode::OP_ELSE: return "OP_ELSE";
    case Opcode::OP_ENDIF: return "OP_ENDIF";
    case Opcode::OP_VERIFY: return "OP_VERIFY";
    case Opcode::OP_RETURN: return "OP_RETURN";
    case Opcode::OP_TOALTSTACK: return "OP_TOALTSTACK";
    case Opcode::OP_FROMALTSTACK: return "OP_FROMALTSTACK";
    case Opcode::OP_DROP: return "OP_DROP";
    case Opcode::OP_DUP: return "OP_DUP";
    case Opcode::OP_NIP: return "OP_NIP";
    case Opcode::OP_OVER: return "OP_OVER";
    case Opcode::OP_ROT: return "OP_ROT";
    case Opcode::OP_SWAP: return "OP_SWAP";
    case Opcode::OP_SIZE: return "OP_SIZE";
    case Opcode::OP_EQUAL: return "OP_EQUAL";
    case Opcode::OP_EQUALVERIFY: return "OP_EQUALVERIFY";
    case Opcode::OP_1ADD: return "OP_1ADD";
    case Opcode::OP_1SUB: return "OP_1SUB";
    case Opcode::OP_NOT: return "OP_NOT";
    case Opcode::OP_ADD: return "OP_ADD";
    case Opcode::OP_SUB: return "OP_SUB";
    case Opcode::OP_BOOLAND: return "OP_BOOLAND";
    case Opcode::OP_BOOLOR: return "OP_BOOLOR";
    case Opcode::OP_NUMEQUAL: return "OP_NUMEQUAL";
    case Opcode::OP_NUMEQUALVERIFY: return "OP_NUMEQUALVERIFY";
    case Opcode::OP_LESSTHAN: return "OP_LESSTHAN";
    case Opcode::OP_GREATERTHAN: return "OP_GREATERTHAN";
    case Opcode::OP_MIN: return "OP_MIN";
    case Opcode::OP_MAX: return "OP_MAX";
    case Opcode::OP_WITHIN: return "OP_WITHIN";
    case Opcode::OP_SHA256: return "OP_SHA256";
    case Opcode::OP_HASH160: return "OP_HASH160";
    case Opcode::OP_HASH256: return "OP_HASH256";
    case Opcode::OP_CHECKSIG: return "OP_CHECKSIG";
    case Opcode::OP_CHECKSIGVERIFY: return "OP_CHECKSIGVERIFY";
    case Opcode::OP_CHECKLOCKTIMEVERIFY: return "OP_CHECKLOCKTIMEVERIFY";
    case Opcode::OP_CHECKRSA512PAIR: return "OP_CHECKRSA512PAIR";
    default: break;
  }
  if (byte >= kOp1 && byte <= kOp16)
    return "OP_" + std::to_string(byte - kOp1 + 1);
  return "OP_UNKNOWN(" + std::to_string(byte) + ")";
}

Script& Script::op(Opcode opcode) {
  program_.push_back(static_cast<std::uint8_t>(opcode));
  return *this;
}

Script& Script::push(util::ByteView data) {
  if (data.size() > kMaxElementSize)
    throw std::invalid_argument("Script::push: element too large");
  if (data.empty()) {
    program_.push_back(kOp0);
  } else if (data.size() <= 0x4b) {
    program_.push_back(static_cast<std::uint8_t>(data.size()));
  } else if (data.size() <= 0xff) {
    program_.push_back(kPushData1);
    program_.push_back(static_cast<std::uint8_t>(data.size()));
  } else {
    program_.push_back(kPushData2);
    program_.push_back(static_cast<std::uint8_t>(data.size()));
    program_.push_back(static_cast<std::uint8_t>(data.size() >> 8));
  }
  program_.insert(program_.end(), data.begin(), data.end());
  return *this;
}

Script& Script::push_int(std::int64_t value) {
  if (value == 0) {
    program_.push_back(kOp0);
  } else if (value >= 1 && value <= 16) {
    program_.push_back(static_cast<std::uint8_t>(kOp1 + value - 1));
  } else if (value == -1) {
    program_.push_back(static_cast<std::uint8_t>(Opcode::OP_1NEGATE));
  } else {
    push(scriptnum_encode(value));
  }
  return *this;
}

std::optional<std::vector<Instruction>> Script::decode() const {
  std::vector<Instruction> out;
  std::size_t pos = 0;
  const auto& p = program_;
  while (pos < p.size()) {
    Instruction ins;
    ins.opcode = p[pos++];
    std::size_t push_len = 0;
    if (ins.opcode >= 0x01 && ins.opcode <= 0x4b) {
      push_len = ins.opcode;
    } else if (ins.opcode == kPushData1) {
      if (pos + 1 > p.size()) return std::nullopt;
      push_len = p[pos++];
    } else if (ins.opcode == kPushData2) {
      if (pos + 2 > p.size()) return std::nullopt;
      push_len = p[pos] | static_cast<std::size_t>(p[pos + 1]) << 8;
      pos += 2;
    } else if (ins.opcode == kPushData4) {
      if (pos + 4 > p.size()) return std::nullopt;
      push_len = p[pos] | static_cast<std::size_t>(p[pos + 1]) << 8 |
                 static_cast<std::size_t>(p[pos + 2]) << 16 |
                 static_cast<std::size_t>(p[pos + 3]) << 24;
      pos += 4;
    }
    if (push_len != 0 || ins.is_push()) {
      if (pos + push_len > p.size()) return std::nullopt;
      ins.push.assign(p.begin() + static_cast<std::ptrdiff_t>(pos),
                      p.begin() + static_cast<std::ptrdiff_t>(pos + push_len));
      pos += push_len;
    }
    out.push_back(std::move(ins));
  }
  return out;
}

bool Script::is_push_only() const {
  const auto decoded = decode();
  if (!decoded) return false;
  for (const auto& ins : *decoded) {
    // OP_1..OP_16 and OP_1NEGATE count as pushes for this purpose.
    const bool small_int =
        (ins.opcode >= kOp1 && ins.opcode <= kOp16) ||
        ins.opcode == static_cast<std::uint8_t>(Opcode::OP_1NEGATE);
    if (!ins.is_push() && !small_int) return false;
  }
  return true;
}

std::string Script::disassemble() const {
  const auto decoded = decode();
  if (!decoded) return "<malformed>";
  std::string out;
  for (const auto& ins : *decoded) {
    if (!out.empty()) out += ' ';
    if (ins.is_push()) {
      if (ins.push.empty()) {
        out += "OP_0";
      } else {
        out += '<' + std::to_string(ins.push.size()) + ':' +
               util::to_hex(ins.push) + '>';
      }
    } else {
      out += opcode_name(ins.opcode);
    }
  }
  return out;
}

util::Bytes scriptnum_encode(std::int64_t value) {
  if (value == 0) return {};
  const bool negative = value < 0;
  std::uint64_t abs_val =
      negative ? ~static_cast<std::uint64_t>(value) + 1
               : static_cast<std::uint64_t>(value);
  util::Bytes out;
  while (abs_val != 0) {
    out.push_back(static_cast<std::uint8_t>(abs_val & 0xff));
    abs_val >>= 8;
  }
  if (out.back() & 0x80) {
    out.push_back(negative ? 0x80 : 0x00);
  } else if (negative) {
    out.back() |= 0x80;
  }
  return out;
}

std::optional<std::int64_t> scriptnum_decode(util::ByteView data,
                                             std::size_t max_size) {
  if (data.size() > max_size) return std::nullopt;
  if (data.empty()) return 0;
  // Minimality: the top byte may not be a bare sign-extension.
  if ((data.back() & 0x7f) == 0 &&
      (data.size() == 1 || (data[data.size() - 2] & 0x80) == 0)) {
    return std::nullopt;
  }
  std::int64_t result = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    result |= static_cast<std::int64_t>(data[i] & (i + 1 == data.size() ? 0x7f : 0xff))
              << (8 * i);
  }
  if (data.back() & 0x80) result = -result;
  return result;
}

}  // namespace bcwan::script

#include "script/interpreter.hpp"

#include <algorithm>

#include "crypto/ripemd160.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace bcwan::script {

namespace {

using util::Bytes;
using util::ByteView;

Bytes bool_bytes(bool v) { return v ? Bytes{1} : Bytes{}; }

class Machine {
 public:
  Machine(std::vector<Bytes> stack, const SignatureChecker& checker)
      : stack_(std::move(stack)), checker_(checker) {}

  ScriptError run(const Script& script);
  std::vector<Bytes> take_stack() { return std::move(stack_); }

 private:
  bool executing() const {
    return std::all_of(conditions_.begin(), conditions_.end(),
                       [](bool c) { return c; });
  }

  ScriptError step(const Instruction& ins);

  // Stack helpers; callers must have checked depth.
  Bytes& top(std::size_t depth = 0) {
    return stack_[stack_.size() - 1 - depth];
  }
  Bytes pop() {
    Bytes v = std::move(stack_.back());
    stack_.pop_back();
    return v;
  }
  bool need(std::size_t n) const { return stack_.size() >= n; }

  /// Pops a CScriptNum operand; sets error_ on bad encoding.
  std::optional<std::int64_t> pop_num(std::size_t max_size = 4) {
    const auto num = scriptnum_decode(stack_.back(), max_size);
    stack_.pop_back();
    return num;
  }

  std::vector<Bytes> stack_;
  std::vector<Bytes> alt_stack_;
  std::vector<bool> conditions_;
  const SignatureChecker& checker_;
  std::size_t op_count_ = 0;
};

ScriptError Machine::run(const Script& script) {
  if (script.size() > kMaxScriptSize) return ScriptError::kScriptSize;
  const auto decoded = script.decode();
  if (!decoded) return ScriptError::kMalformedScript;

  for (const auto& ins : *decoded) {
    if (!ins.is_push()) {
      if (++op_count_ > kMaxOpsPerScript) return ScriptError::kOpCount;
    }
    const auto opcode = static_cast<Opcode>(ins.opcode);
    const bool is_conditional = opcode == Opcode::OP_IF ||
                                opcode == Opcode::OP_NOTIF ||
                                opcode == Opcode::OP_ELSE ||
                                opcode == Opcode::OP_ENDIF;
    if (!executing() && !is_conditional) continue;

    const ScriptError err = step(ins);
    if (err != ScriptError::kOk) return err;
    if (stack_.size() + alt_stack_.size() > kMaxStackSize)
      return ScriptError::kStackOverflow;
  }
  if (!conditions_.empty()) return ScriptError::kUnbalancedConditional;
  return ScriptError::kOk;
}

ScriptError Machine::step(const Instruction& ins) {
  const auto opcode = static_cast<Opcode>(ins.opcode);

  if (ins.is_push()) {
    if (ins.push.size() > kMaxElementSize) return ScriptError::kPushSize;
    stack_.push_back(ins.push);
    return ScriptError::kOk;
  }

  // Small-integer pushes.
  if (ins.opcode >= static_cast<std::uint8_t>(Opcode::OP_1) &&
      ins.opcode <= static_cast<std::uint8_t>(Opcode::OP_16)) {
    stack_.push_back(scriptnum_encode(
        ins.opcode - static_cast<std::uint8_t>(Opcode::OP_1) + 1));
    return ScriptError::kOk;
  }

  switch (opcode) {
    case Opcode::OP_1NEGATE:
      stack_.push_back(scriptnum_encode(-1));
      return ScriptError::kOk;

    case Opcode::OP_NOP:
      return ScriptError::kOk;

    case Opcode::OP_IF:
    case Opcode::OP_NOTIF: {
      bool value = false;
      if (executing()) {
        if (!need(1)) return ScriptError::kStackUnderflow;
        value = cast_to_bool(pop());
        if (opcode == Opcode::OP_NOTIF) value = !value;
      }
      conditions_.push_back(value);
      return ScriptError::kOk;
    }
    case Opcode::OP_ELSE:
      if (conditions_.empty()) return ScriptError::kUnbalancedConditional;
      conditions_.back() = !conditions_.back();
      return ScriptError::kOk;
    case Opcode::OP_ENDIF:
      if (conditions_.empty()) return ScriptError::kUnbalancedConditional;
      conditions_.pop_back();
      return ScriptError::kOk;

    case Opcode::OP_VERIFY:
      if (!need(1)) return ScriptError::kStackUnderflow;
      if (!cast_to_bool(pop())) return ScriptError::kVerifyFailed;
      return ScriptError::kOk;

    case Opcode::OP_RETURN:
      return ScriptError::kOpReturn;

    case Opcode::OP_TOALTSTACK:
      if (!need(1)) return ScriptError::kStackUnderflow;
      alt_stack_.push_back(pop());
      return ScriptError::kOk;
    case Opcode::OP_FROMALTSTACK:
      if (alt_stack_.empty()) return ScriptError::kStackUnderflow;
      stack_.push_back(std::move(alt_stack_.back()));
      alt_stack_.pop_back();
      return ScriptError::kOk;

    case Opcode::OP_DROP:
      if (!need(1)) return ScriptError::kStackUnderflow;
      stack_.pop_back();
      return ScriptError::kOk;
    case Opcode::OP_DUP:
      if (!need(1)) return ScriptError::kStackUnderflow;
      stack_.push_back(top());
      return ScriptError::kOk;
    case Opcode::OP_NIP:
      if (!need(2)) return ScriptError::kStackUnderflow;
      stack_.erase(stack_.end() - 2);
      return ScriptError::kOk;
    case Opcode::OP_OVER:
      if (!need(2)) return ScriptError::kStackUnderflow;
      stack_.push_back(top(1));
      return ScriptError::kOk;
    case Opcode::OP_ROT:
      if (!need(3)) return ScriptError::kStackUnderflow;
      std::rotate(stack_.end() - 3, stack_.end() - 2, stack_.end());
      return ScriptError::kOk;
    case Opcode::OP_SWAP:
      if (!need(2)) return ScriptError::kStackUnderflow;
      std::swap(top(), top(1));
      return ScriptError::kOk;
    case Opcode::OP_SIZE:
      if (!need(1)) return ScriptError::kStackUnderflow;
      stack_.push_back(
          scriptnum_encode(static_cast<std::int64_t>(top().size())));
      return ScriptError::kOk;

    case Opcode::OP_EQUAL:
    case Opcode::OP_EQUALVERIFY: {
      if (!need(2)) return ScriptError::kStackUnderflow;
      const Bytes b = pop();
      const Bytes a = pop();
      const bool equal = a == b;
      if (opcode == Opcode::OP_EQUALVERIFY) {
        if (!equal) return ScriptError::kVerifyFailed;
      } else {
        stack_.push_back(bool_bytes(equal));
      }
      return ScriptError::kOk;
    }

    case Opcode::OP_1ADD:
    case Opcode::OP_1SUB:
    case Opcode::OP_NOT: {
      if (!need(1)) return ScriptError::kStackUnderflow;
      const auto a = pop_num();
      if (!a) return ScriptError::kBadNumber;
      std::int64_t r = 0;
      if (opcode == Opcode::OP_1ADD) r = *a + 1;
      if (opcode == Opcode::OP_1SUB) r = *a - 1;
      if (opcode == Opcode::OP_NOT) r = (*a == 0) ? 1 : 0;
      stack_.push_back(scriptnum_encode(r));
      return ScriptError::kOk;
    }

    case Opcode::OP_ADD:
    case Opcode::OP_SUB:
    case Opcode::OP_BOOLAND:
    case Opcode::OP_BOOLOR:
    case Opcode::OP_NUMEQUAL:
    case Opcode::OP_NUMEQUALVERIFY:
    case Opcode::OP_LESSTHAN:
    case Opcode::OP_GREATERTHAN:
    case Opcode::OP_MIN:
    case Opcode::OP_MAX: {
      if (!need(2)) return ScriptError::kStackUnderflow;
      const auto b = pop_num();
      const auto a = pop_num();
      if (!a || !b) return ScriptError::kBadNumber;
      std::int64_t r = 0;
      switch (opcode) {
        case Opcode::OP_ADD: r = *a + *b; break;
        case Opcode::OP_SUB: r = *a - *b; break;
        case Opcode::OP_BOOLAND: r = (*a != 0 && *b != 0) ? 1 : 0; break;
        case Opcode::OP_BOOLOR: r = (*a != 0 || *b != 0) ? 1 : 0; break;
        case Opcode::OP_NUMEQUAL:
        case Opcode::OP_NUMEQUALVERIFY: r = (*a == *b) ? 1 : 0; break;
        case Opcode::OP_LESSTHAN: r = (*a < *b) ? 1 : 0; break;
        case Opcode::OP_GREATERTHAN: r = (*a > *b) ? 1 : 0; break;
        case Opcode::OP_MIN: r = std::min(*a, *b); break;
        case Opcode::OP_MAX: r = std::max(*a, *b); break;
        default: break;
      }
      if (opcode == Opcode::OP_NUMEQUALVERIFY) {
        if (r == 0) return ScriptError::kVerifyFailed;
      } else {
        stack_.push_back(scriptnum_encode(r));
      }
      return ScriptError::kOk;
    }

    case Opcode::OP_WITHIN: {
      if (!need(3)) return ScriptError::kStackUnderflow;
      const auto hi = pop_num();
      const auto lo = pop_num();
      const auto x = pop_num();
      if (!hi || !lo || !x) return ScriptError::kBadNumber;
      stack_.push_back(bool_bytes(*lo <= *x && *x < *hi));
      return ScriptError::kOk;
    }

    case Opcode::OP_SHA256: {
      if (!need(1)) return ScriptError::kStackUnderflow;
      const Bytes data = pop();
      stack_.push_back(crypto::digest_bytes(crypto::sha256(data)));
      return ScriptError::kOk;
    }
    case Opcode::OP_HASH160: {
      if (!need(1)) return ScriptError::kStackUnderflow;
      const Bytes data = pop();
      stack_.push_back(crypto::digest_bytes(crypto::hash160(data)));
      return ScriptError::kOk;
    }
    case Opcode::OP_HASH256: {
      if (!need(1)) return ScriptError::kStackUnderflow;
      const Bytes data = pop();
      stack_.push_back(crypto::digest_bytes(crypto::sha256d(data)));
      return ScriptError::kOk;
    }

    case Opcode::OP_CHECKSIG:
    case Opcode::OP_CHECKSIGVERIFY: {
      if (!need(2)) return ScriptError::kStackUnderflow;
      const Bytes pubkey = pop();
      const Bytes sig = pop();
      const bool valid = checker_.check_sig(sig, pubkey);
      if (opcode == Opcode::OP_CHECKSIGVERIFY) {
        if (!valid) return ScriptError::kVerifyFailed;
      } else {
        stack_.push_back(bool_bytes(valid));
      }
      return ScriptError::kOk;
    }

    case Opcode::OP_CHECKLOCKTIMEVERIFY: {
      // BIP-65: peek (do not pop) the required locktime; the spending
      // transaction's own nLockTime must reach it, and the input must not
      // have opted out via a final sequence number.
      if (!need(1)) return ScriptError::kStackUnderflow;
      const auto required = scriptnum_decode(top(), 5);
      if (!required) return ScriptError::kBadNumber;
      if (*required < 0) return ScriptError::kNegativeLocktime;
      if (checker_.tx_locktime() < *required)
        return ScriptError::kUnsatisfiedLocktime;
      if (checker_.input_sequence_final())
        return ScriptError::kUnsatisfiedLocktime;
      return ScriptError::kOk;
    }

    case Opcode::OP_CHECKRSA512PAIR: {
      // BcWAN custom operator (paper Listing 1). Stack: .. <priv> <pub>.
      // Pops both, pushes true iff priv matches pub. A spender taking the
      // timeout branch pushes a dummy priv and the operator yields false.
      if (!need(2)) return ScriptError::kStackUnderflow;
      const Bytes pub_ser = pop();
      const Bytes priv_ser = pop();
      const auto pub = crypto::RsaPublicKey::deserialize(pub_ser);
      const auto priv = crypto::RsaPrivateKey::deserialize(priv_ser);
      const bool matches =
          pub && priv && crypto::rsa_pair_matches(*pub, *priv);
      stack_.push_back(bool_bytes(matches));
      return ScriptError::kOk;
    }

    default:
      return ScriptError::kBadOpcode;
  }
}

}  // namespace

bool cast_to_bool(ByteView value) noexcept {
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] != 0) {
      // Negative zero (sign bit only in the last byte) is false.
      if (i == value.size() - 1 && value[i] == 0x80) return false;
      return true;
    }
  }
  return false;
}

std::string script_error_name(ScriptError err) {
  switch (err) {
    case ScriptError::kOk: return "ok";
    case ScriptError::kEvalFalse: return "eval-false";
    case ScriptError::kBadOpcode: return "bad-opcode";
    case ScriptError::kMalformedScript: return "malformed-script";
    case ScriptError::kScriptSize: return "script-size";
    case ScriptError::kPushSize: return "push-size";
    case ScriptError::kStackUnderflow: return "stack-underflow";
    case ScriptError::kStackOverflow: return "stack-overflow";
    case ScriptError::kOpCount: return "op-count";
    case ScriptError::kUnbalancedConditional: return "unbalanced-conditional";
    case ScriptError::kVerifyFailed: return "verify-failed";
    case ScriptError::kOpReturn: return "op-return";
    case ScriptError::kBadNumber: return "bad-number";
    case ScriptError::kNegativeLocktime: return "negative-locktime";
    case ScriptError::kUnsatisfiedLocktime: return "unsatisfied-locktime";
    case ScriptError::kSigPushOnly: return "sig-push-only";
  }
  return "unknown";
}

ExecResult eval_script(const Script& script, std::vector<util::Bytes> stack,
                       const SignatureChecker& checker) {
  Machine machine(std::move(stack), checker);
  ExecResult result;
  result.error = machine.run(script);
  result.stack = machine.take_stack();
  return result;
}

ExecResult verify_spend(const Script& script_sig, const Script& script_pubkey,
                        const SignatureChecker& checker) {
  ExecResult result;
  if (!script_sig.is_push_only()) {
    result.error = ScriptError::kSigPushOnly;
    return result;
  }
  result = eval_script(script_sig, {}, checker);
  if (!result.ok()) return result;
  result = eval_script(script_pubkey, std::move(result.stack), checker);
  if (!result.ok()) return result;
  if (result.stack.empty() || !cast_to_bool(result.stack.back())) {
    result.error = ScriptError::kEvalFalse;
  }
  return result;
}

}  // namespace bcwan::script

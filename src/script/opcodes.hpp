// Opcode set for the BcWAN blockchain script language.
//
// A faithful subset of Bitcoin 0.10 script (the engine Multichain forked),
// plus the paper's custom operator OP_CHECKRSA512PAIR (§4.4): "verify that
// the Private key given by the gateway is the one that matches the public
// key in the transaction". Byte values match Bitcoin where an opcode exists
// there; the custom operator takes an unused slot (0xc0).
#pragma once

#include <cstdint>
#include <string>

namespace bcwan::script {

enum class Opcode : std::uint8_t {
  // Pushes. Raw values 0x01..0x4b push that many following bytes.
  OP_0 = 0x00,
  OP_PUSHDATA1 = 0x4c,
  OP_PUSHDATA2 = 0x4d,
  OP_PUSHDATA4 = 0x4e,
  OP_1NEGATE = 0x4f,
  OP_1 = 0x51,
  OP_2 = 0x52,
  OP_3 = 0x53,
  OP_4 = 0x54,
  OP_5 = 0x55,
  OP_6 = 0x56,
  OP_7 = 0x57,
  OP_8 = 0x58,
  OP_9 = 0x59,
  OP_10 = 0x5a,
  OP_11 = 0x5b,
  OP_12 = 0x5c,
  OP_13 = 0x5d,
  OP_14 = 0x5e,
  OP_15 = 0x5f,
  OP_16 = 0x60,

  // Flow control.
  OP_NOP = 0x61,
  OP_IF = 0x63,
  OP_NOTIF = 0x64,
  OP_ELSE = 0x67,
  OP_ENDIF = 0x68,
  OP_VERIFY = 0x69,
  OP_RETURN = 0x6a,

  // Stack.
  OP_TOALTSTACK = 0x6b,
  OP_FROMALTSTACK = 0x6c,
  OP_DROP = 0x75,
  OP_DUP = 0x76,
  OP_NIP = 0x77,
  OP_OVER = 0x78,
  OP_ROT = 0x7b,
  OP_SWAP = 0x7c,
  OP_SIZE = 0x82,

  // Comparison.
  OP_EQUAL = 0x87,
  OP_EQUALVERIFY = 0x88,

  // Arithmetic (CScriptNum semantics, 4-byte operands).
  OP_1ADD = 0x8b,
  OP_1SUB = 0x8c,
  OP_NOT = 0x91,
  OP_ADD = 0x93,
  OP_SUB = 0x94,
  OP_BOOLAND = 0x9a,
  OP_BOOLOR = 0x9b,
  OP_NUMEQUAL = 0x9c,
  OP_NUMEQUALVERIFY = 0x9d,
  OP_LESSTHAN = 0x9f,
  OP_GREATERTHAN = 0xa0,
  OP_MIN = 0xa3,
  OP_MAX = 0xa4,
  OP_WITHIN = 0xa5,

  // Crypto.
  OP_SHA256 = 0xa8,
  OP_HASH160 = 0xa9,
  OP_HASH256 = 0xaa,
  OP_CHECKSIG = 0xac,
  OP_CHECKSIGVERIFY = 0xad,

  // Locktime (BIP-65, present in the Bitcoin 0.10 lineage the paper used).
  OP_CHECKLOCKTIMEVERIFY = 0xb1,

  // BcWAN custom operator (paper §4.4, Listing 1): pops <rsaPrivKey> and
  // <rsaPubKey>, pushes true iff they form a valid RSA key pair.
  OP_CHECKRSA512PAIR = 0xc0,

  OP_INVALIDOPCODE = 0xff,
};

/// Human-readable opcode name ("OP_DUP"); push lengths render as "PUSH(n)".
std::string opcode_name(std::uint8_t byte);

}  // namespace bcwan::script

#include "script/templates.hpp"

#include <algorithm>

namespace bcwan::script {

namespace {

util::ByteView hash_view(const PubKeyHash& h) {
  return util::ByteView(h.data(), h.size());
}

}  // namespace

PubKeyHash to_pubkey_hash(util::ByteView pubkey_encoded) {
  const crypto::Digest160 digest = crypto::hash160(pubkey_encoded);
  PubKeyHash out;
  std::copy(digest.begin(), digest.end(), out.begin());
  return out;
}

Script make_p2pkh(const PubKeyHash& hash) {
  Script s;
  s.op(Opcode::OP_DUP)
      .op(Opcode::OP_HASH160)
      .push(hash_view(hash))
      .op(Opcode::OP_EQUALVERIFY)
      .op(Opcode::OP_CHECKSIG);
  return s;
}

Script make_p2pkh_scriptsig(util::ByteView sig, util::ByteView pubkey) {
  Script s;
  s.push(sig).push(pubkey);
  return s;
}

Script make_op_return(util::ByteView data) {
  Script s;
  s.op(Opcode::OP_RETURN).push(data);
  return s;
}

Script make_key_release(const crypto::RsaPublicKey& ephemeral_pub,
                        const PubKeyHash& gateway_pkh,
                        const PubKeyHash& buyer_pkh,
                        std::int64_t timeout_height) {
  Script s;
  s.push(ephemeral_pub.serialize())
      .op(Opcode::OP_CHECKRSA512PAIR)
      .op(Opcode::OP_IF)
      .op(Opcode::OP_DUP)
      .op(Opcode::OP_HASH160)
      .push(hash_view(gateway_pkh))
      .op(Opcode::OP_EQUALVERIFY)
      .op(Opcode::OP_ELSE)
      .push_int(timeout_height)
      .op(Opcode::OP_CHECKLOCKTIMEVERIFY)
      .op(Opcode::OP_VERIFY)
      .op(Opcode::OP_DUP)
      .op(Opcode::OP_HASH160)
      .push(hash_view(buyer_pkh))
      .op(Opcode::OP_EQUALVERIFY)
      .op(Opcode::OP_ENDIF)
      .op(Opcode::OP_CHECKSIG);
  return s;
}

Script make_key_release_redeem(util::ByteView sig, util::ByteView pubkey,
                               const crypto::RsaPrivateKey& ephemeral_priv) {
  Script s;
  s.push(sig).push(pubkey).push(ephemeral_priv.serialize());
  return s;
}

Script make_key_release_reclaim(util::ByteView sig, util::ByteView pubkey) {
  Script s;
  // The dummy must deserialize as *something* OP_CHECKRSA512PAIR can reject;
  // a single zero byte fails RsaPrivateKey::deserialize and yields false.
  s.push(sig).push(pubkey).push(util::Bytes{0x00});
  return s;
}

namespace {

bool is_op(const Instruction& ins, Opcode op) {
  return !ins.is_push() && ins.opcode == static_cast<std::uint8_t>(op);
}

bool push_hash(const Instruction& ins, PubKeyHash& out) {
  if (!ins.is_push() || ins.push.size() != 20) return false;
  std::copy(ins.push.begin(), ins.push.end(), out.begin());
  return true;
}

}  // namespace

ClassifiedScript classify(const Script& script) {
  ClassifiedScript out;
  const auto decoded = script.decode();
  if (!decoded) return out;
  const auto& ins = *decoded;

  // P2PKH: DUP HASH160 <20> EQUALVERIFY CHECKSIG
  if (ins.size() == 5 && is_op(ins[0], Opcode::OP_DUP) &&
      is_op(ins[1], Opcode::OP_HASH160) && push_hash(ins[2], out.pubkey_hash) &&
      is_op(ins[3], Opcode::OP_EQUALVERIFY) &&
      is_op(ins[4], Opcode::OP_CHECKSIG)) {
    out.type = ScriptType::kP2pkh;
    return out;
  }

  // OP_RETURN <data>
  if (ins.size() == 2 && is_op(ins[0], Opcode::OP_RETURN) && ins[1].is_push()) {
    out.type = ScriptType::kOpReturn;
    out.data = ins[1].push;
    return out;
  }

  // Listing 1: <rsaPub> CHECKRSA512PAIR IF DUP HASH160 <20> EQUALVERIFY
  //            ELSE <height> CLTV VERIFY DUP HASH160 <20> EQUALVERIFY
  //            ENDIF CHECKSIG
  if (ins.size() == 17 && ins[0].is_push() &&
      is_op(ins[1], Opcode::OP_CHECKRSA512PAIR) &&
      is_op(ins[2], Opcode::OP_IF) && is_op(ins[3], Opcode::OP_DUP) &&
      is_op(ins[4], Opcode::OP_HASH160) &&
      push_hash(ins[5], out.pubkey_hash) &&
      is_op(ins[6], Opcode::OP_EQUALVERIFY) &&
      is_op(ins[7], Opcode::OP_ELSE) && ins[8].is_push() &&
      is_op(ins[9], Opcode::OP_CHECKLOCKTIMEVERIFY) &&
      is_op(ins[10], Opcode::OP_VERIFY) && is_op(ins[11], Opcode::OP_DUP) &&
      is_op(ins[12], Opcode::OP_HASH160) &&
      push_hash(ins[13], out.buyer_pubkey_hash) &&
      is_op(ins[14], Opcode::OP_EQUALVERIFY) &&
      is_op(ins[15], Opcode::OP_ENDIF) &&
      is_op(ins[16], Opcode::OP_CHECKSIG)) {
    const auto pub = crypto::RsaPublicKey::deserialize(ins[0].push);
    const auto height = scriptnum_decode(ins[8].push, 5);
    if (pub && height && *height >= 0) {
      out.type = ScriptType::kKeyRelease;
      out.ephemeral_pub = pub;
      out.timeout_height = *height;
      return out;
    }
    out = ClassifiedScript{};  // reset partial fills
  }

  return out;
}

std::optional<crypto::RsaPrivateKey> extract_revealed_key(
    const Script& script_sig) {
  const auto decoded = script_sig.decode();
  if (!decoded || decoded->size() != 3) return std::nullopt;
  const auto& key_push = (*decoded)[2];
  if (!key_push.is_push()) return std::nullopt;
  return crypto::RsaPrivateKey::deserialize(key_push.push);
}

}  // namespace bcwan::script

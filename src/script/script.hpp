// Script container, builder and disassembler.
//
// A Script is a raw byte program (push opcodes interleaved with operators),
// exactly as serialized into transaction inputs/outputs. The builder methods
// always emit the *minimal* push encoding so scripts are canonical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "script/opcodes.hpp"
#include "util/bytes.hpp"

namespace bcwan::script {

/// Maximum script size accepted by the interpreter (Bitcoin's limit).
constexpr std::size_t kMaxScriptSize = 10000;
/// Maximum size of a single pushed element.
constexpr std::size_t kMaxElementSize = 520;

/// One decoded instruction: an operator, or a push with its payload.
struct Instruction {
  std::uint8_t opcode = 0;   // raw byte
  util::Bytes push;          // payload when this is a push
  bool is_push() const noexcept {
    return opcode <= static_cast<std::uint8_t>(Opcode::OP_PUSHDATA4);
  }
};

class Script {
 public:
  Script() = default;
  explicit Script(util::Bytes program) : program_(std::move(program)) {}

  const util::Bytes& bytes() const noexcept { return program_; }
  std::size_t size() const noexcept { return program_.size(); }
  bool empty() const noexcept { return program_.empty(); }

  /// Append an operator.
  Script& op(Opcode opcode);
  /// Append a minimal push of arbitrary data (OP_0 for empty).
  Script& push(util::ByteView data);
  /// Append a minimal push of a CScriptNum (OP_0/OP_1..OP_16 when in range).
  Script& push_int(std::int64_t value);

  /// Decode into instructions. Returns std::nullopt on truncated pushes.
  std::optional<std::vector<Instruction>> decode() const;

  /// True if every instruction is a push (required of scriptSigs).
  bool is_push_only() const;

  /// "OP_DUP OP_HASH160 <20:ab..> OP_EQUALVERIFY OP_CHECKSIG"
  std::string disassemble() const;

  friend bool operator==(const Script&, const Script&) = default;

 private:
  util::Bytes program_;
};

/// Bitcoin CScriptNum encoding: little-endian, sign bit in the top byte,
/// minimal length. Heights and small counters use this.
util::Bytes scriptnum_encode(std::int64_t value);
/// Decode with a maximum operand width (Bitcoin uses 4 for arithmetic and
/// 5 for CLTV). Returns std::nullopt on oversized or non-minimal input.
std::optional<std::int64_t> scriptnum_decode(util::ByteView data,
                                             std::size_t max_size = 4);

}  // namespace bcwan::script

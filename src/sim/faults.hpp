// Chaos-injection subsystem.
//
// A FaultPlan is a set of fault events — WAN partitions, LoRa channel
// degradation, gateway crashes, miner stalls — scheduled on the scenario's
// event loop. Faults exercise the recovery paths the paper's §6 hand-waves
// ("malicious or faulty behaviour"): every fault here maps to a concrete
// operational failure of the PoC deployment (a PlanetLab site dropping off
// the net, a fading LoRa link, the gateway daemon dying, the EC2 miner
// hanging).
//
// Two ways to use it:
//   * deterministic: call partition_host / degrade_lora / crash_gateway /
//     stall_miner with explicit times (regression tests);
//   * randomized: describe an intensity with ChaosProfile and call
//     unleash(), which samples start times uniformly over a horizon
//     (chaos sweeps, bench_fault_recovery).
// Every injected event is recorded in a human-readable log for debugging
// and bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace bcwan::sim {

/// Randomized chaos intensity over one horizon (see FaultPlan::unleash).
struct ChaosProfile {
  /// WAN partitions per actor host over the horizon (0 = none).
  double partitions_per_actor = 1.0;
  util::SimTime partition_duration = 60 * util::kSecond;
  /// Also partition the master host this many times over the horizon.
  double master_partitions = 0.0;
  /// Gateway crash/restart cycles over the horizon, spread across gateways.
  /// On persistent deployments the co-located chain daemon crash-stops too
  /// and comes back through real disk recovery.
  double gateway_crashes = 1.0;
  util::SimTime crash_downtime = 90 * util::kSecond;
  /// Gateway crashes that additionally shear a partial record off the
  /// block log tail while the host is down (torn write at the moment of
  /// death). No-op on in-memory deployments.
  double torn_writes = 0.0;
  /// Master (miner) host crash/restart cycles over the horizon — mining
  /// pauses for the downtime and the master's chainstate recovers from
  /// disk on persistent deployments.
  double miner_crashes = 0.0;
  /// Miner stalls over the horizon.
  double miner_stalls = 1.0;
  util::SimTime stall_duration = 2 * util::kMinute;
  /// Gilbert–Elliott burst loss installed for the whole horizon.
  /// Left disabled (all-zero losses) unless set.
  lora::BurstLossModel burst;
};

class FaultPlan {
 public:
  FaultPlan(Scenario& scenario, std::uint64_t seed);

  // -- Deterministic fault scheduling (times are absolute virtual times). --

  /// Disconnect one WAN host for `duration` starting at `at`.
  void partition_host(p2p::HostId host, util::SimTime at,
                      util::SimTime duration);
  /// Disconnect an actor's host (its gateways + recipient).
  void partition_actor(int actor, util::SimTime at, util::SimTime duration);
  /// Disconnect the master miner's host.
  void partition_master(util::SimTime at, util::SimTime duration);
  /// Install a Gilbert–Elliott model and force every LoRa link into the bad
  /// state for `duration`; links then resume normal G-E dynamics.
  void degrade_lora(const lora::BurstLossModel& model, util::SimTime at,
                    util::SimTime duration);
  /// Crash one gateway agent at `at` and restart it `downtime` later. On a
  /// persistent deployment its host's chain daemon crash-stops with it and
  /// restarts through disk recovery (snapshot load + log replay).
  void crash_gateway(std::size_t gateway_index, util::SimTime at,
                     util::SimTime downtime);
  /// crash_gateway plus a torn write: while the host is down, `tear_bytes`
  /// are sheared off its block log tail, so recovery must detect and
  /// truncate a partial record. In-memory deployments just crash.
  void torn_write_crash(std::size_t gateway_index, util::SimTime at,
                        util::SimTime downtime, std::uint64_t tear_bytes);
  /// Crash the master host: mining stops, its daemon crash-stops (with
  /// disk recovery on restart where persistent) and resumes after
  /// `downtime`.
  void crash_miner(util::SimTime at, util::SimTime downtime);
  /// Freeze the master's Poisson mining loop for `duration`.
  void stall_miner(util::SimTime at, util::SimTime duration);

  // -- Randomized chaos. --

  /// Sample fault start times uniformly over [now, now + horizon] at the
  /// profile's intensities and schedule them all. The profile's burst model
  /// (if enabled) is installed immediately and left in place.
  void unleash(const ChaosProfile& profile, util::SimTime horizon);

  // -- Telemetry. --

  std::uint64_t partitions_injected() const noexcept { return partitions_; }
  std::uint64_t crashes_injected() const noexcept { return crashes_; }
  std::uint64_t stalls_injected() const noexcept { return stalls_; }
  std::uint64_t lora_degradations() const noexcept { return degradations_; }
  /// Chronological, human-readable record of every injected event.
  const std::vector<std::string>& log() const noexcept { return log_; }

 private:
  void record(util::SimTime at, const std::string& what);

  Scenario& scenario_;
  util::Rng rng_;
  std::uint64_t partitions_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t degradations_ = 0;
  std::vector<std::string> log_;
};

}  // namespace bcwan::sim

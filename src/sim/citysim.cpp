#include "sim/citysim.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace bcwan::sim {

namespace {

/// Pack a (kind, entity) pair into one substream word.
std::uint64_t stream_word(std::uint64_t kind, std::uint64_t entity) noexcept {
  return kind << 40 | entity;
}

}  // namespace

CityEngine::CityEngine(CityConfig config)
    : config_(config), loop_() {
  register_handlers();
}

CityEngine::CityEngine(CityConfig config, p2p::EventLoop::Backend backend,
                       unsigned threads)
    : config_(config), loop_(backend, threads) {
  register_handlers();
}

void CityEngine::register_handlers() {
  if (config_.gateways == 0 || config_.sensors == 0 ||
      config_.recipients == 0) {
    throw std::invalid_argument("CityEngine: empty population");
  }
  if (util::from_millis(config_.wan_floor_ms) < config_.lookahead) {
    throw std::invalid_argument(
        "CityEngine: WAN floor below the lookahead window");
  }
  loop_.set_lookahead(config_.lookahead);

  start_us_.assign(config_.sensors, 0);
  cipher_.assign(config_.sensors, crypto::AesBlock{});
  tag_.assign(config_.sensors, crypto::Digest256{});

  code_report_due_ = loop_.register_code(
      [this](std::uint64_t a, std::uint64_t b) { on_report_due(a, b); });
  code_epk_req_ = loop_.register_code(
      [this](std::uint64_t a, std::uint64_t b) { on_epk_req(a, b); });
  code_epk_got_ = loop_.register_code(
      [this](std::uint64_t a, std::uint64_t b) { on_epk_got(a, b); });
  code_data_arrive_ = loop_.register_code(
      [this](std::uint64_t a, std::uint64_t b) { on_data_arrive(a, b); });
  code_deliver_ = loop_.register_code(
      [this](std::uint64_t a, std::uint64_t b) { on_deliver(a, b); });
  code_offer_seen_ = loop_.register_code(
      [this](std::uint64_t a, std::uint64_t b) { on_offer_seen(a, b); });
  code_reveal_seen_ = loop_.register_code(
      [this](std::uint64_t a, std::uint64_t b) { on_reveal_seen(a, b); });
}

p2p::StrandId CityEngine::sensor_strand(std::uint32_t sensor) const noexcept {
  // A sensor's LoRa hop terminates at its gateway: share the strand.
  return static_cast<p2p::StrandId>(gateway_of(sensor) % kStrandsPerClass);
}

p2p::StrandId CityEngine::recipient_strand(
    std::uint32_t sensor) const noexcept {
  const std::uint32_t recipient = sensor % config_.recipients;
  return static_cast<p2p::StrandId>(kStrandsPerClass +
                                    recipient % kStrandsPerClass);
}

util::SimTime CityEngine::sample_exp(Stream stream, std::uint32_t entity,
                                     std::uint64_t nonce,
                                     double mean_ms) const {
  util::Rng rng = util::Rng::substream(config_.seed,
                                       stream_word(stream, entity), nonce);
  return util::from_millis(rng.exponential(mean_ms));
}

util::SimTime CityEngine::sample_wan(Stream stream, std::uint32_t sensor,
                                     std::uint64_t nonce) const {
  util::Rng rng = util::Rng::substream(config_.seed,
                                       stream_word(stream, sensor), nonce);
  const double mu = std::log(config_.wan_median_ms);
  const double ms =
      std::max(config_.wan_floor_ms, rng.lognormal(mu, config_.wan_sigma));
  return util::from_millis(ms);
}

crypto::AesKey256 CityEngine::sensor_key(std::uint32_t sensor) const noexcept {
  // Provisioned shared key K, derived statelessly from (seed, sensor).
  crypto::AesKey256 key;
  std::uint64_t x = util::mix64(config_.seed ^ util::mix64(sensor | 1ull << 32));
  for (std::size_t w = 0; w < 4; ++w) {
    x = util::mix64(x + w);
    std::memcpy(key.data() + 8 * w, &x, 8);
  }
  return key;
}

crypto::AesBlock CityEngine::reading_for(std::uint32_t sensor,
                                         std::uint64_t nonce) const noexcept {
  crypto::AesBlock block;
  const std::uint64_t w0 =
      util::mix64(config_.seed ^ util::mix64(sensor) ^ nonce);
  const std::uint64_t w1 = util::mix64(w0);
  std::memcpy(block.data(), &w0, 8);
  std::memcpy(block.data() + 8, &w1, 8);
  return block;
}

crypto::Digest256 CityEngine::envelope_tag(
    std::uint32_t sensor, std::uint64_t nonce,
    const crypto::AesBlock& cipher) const {
  crypto::Sha256 h;
  h.update(cipher);
  std::uint8_t trailer[12];
  std::memcpy(trailer, &sensor, 4);
  std::memcpy(trailer + 4, &nonce, 8);
  h.update(trailer);
  return h.finalize();
}

// ---- protocol phases --------------------------------------------------------
// Each handler runs on the strand noted; (a, b) = (sensor, nonce). All
// scheduling delays are >= the lookahead window by construction: airtimes
// are ~100 ms, the WAN floor is validated against the lookahead, settlement
// and report intervals are seconds.

void CityEngine::on_report_due(std::uint64_t sensor, std::uint64_t nonce) {
  // Sensor strand. The device wakes, requests an ephemeral key (ePk) over
  // LoRa; the request reaches the gateway after the uplink airtime.
  const auto s = static_cast<std::uint32_t>(sensor);
  start_us_[s] = loop_.now();
  loop_.post(loop_.now() + util::from_millis(config_.uplink_airtime_ms),
             sensor_strand(s), code_epk_req_, sensor, nonce);
}

void CityEngine::on_epk_req(std::uint64_t sensor, std::uint64_t nonce) {
  // Gateway strand (same as the sensor's). The gateway generates the
  // RSA-512 ephemeral pair — a modeled service time — and downlinks ePk.
  const auto s = static_cast<std::uint32_t>(sensor);
  const util::SimTime keygen =
      sample_exp(kStreamKeygen, gateway_of(s), nonce, config_.keygen_mean_ms);
  loop_.post(loop_.now() + keygen +
                 util::from_millis(config_.downlink_airtime_ms),
             sensor_strand(s), code_epk_got_, sensor, nonce);
}

void CityEngine::on_epk_got(std::uint64_t sensor, std::uint64_t nonce) {
  // Sensor strand. Real crypto: the reading is AES-256 encrypted under the
  // provisioned key (the ePk wrap of K is part of the modeled keygen cost).
  const auto s = static_cast<std::uint32_t>(sensor);
  const crypto::Aes256 aes(sensor_key(s));
  cipher_[s] = aes.encrypt_block(reading_for(s, nonce));
  loop_.post(loop_.now() + util::from_millis(config_.uplink_airtime_ms),
             sensor_strand(s), code_data_arrive_, sensor, nonce);
}

void CityEngine::on_data_arrive(std::uint64_t sensor, std::uint64_t nonce) {
  // Gateway strand. The gateway seals the envelope — a real SHA-256 tag
  // over (ciphertext, sensor, nonce) — and forwards DELIVER across the WAN
  // to the recipient's host (cross-strand hop; WAN floor >= lookahead).
  const auto s = static_cast<std::uint32_t>(sensor);
  tag_[s] = envelope_tag(s, nonce, cipher_[s]);
  loop_.post(loop_.now() + sample_wan(kStreamWanDeliver, s, nonce),
             recipient_strand(s), code_deliver_, sensor, nonce);
}

void CityEngine::on_deliver(std::uint64_t sensor, std::uint64_t nonce) {
  // Recipient strand. Verify the envelope tag (recompute and compare),
  // then post the payment offer on-chain: WAN to the chain plus the
  // memoryless wait for the next block.
  const auto s = static_cast<std::uint32_t>(sensor);
  if (envelope_tag(s, nonce, cipher_[s]) != tag_[s]) {
    verify_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const util::SimTime settle = sample_exp(
      kStreamSettleOffer, s, nonce,
      util::to_millis(config_.block_interval));
  loop_.post(loop_.now() + sample_wan(kStreamWanOffer, s, nonce) + settle,
             sensor_strand(s), code_offer_seen_, sensor, nonce);
}

void CityEngine::on_offer_seen(std::uint64_t sensor, std::uint64_t nonce) {
  // Gateway strand. The gateway sees the confirmed offer and reveals eSk
  // (redeems the offer); the recipient sees the reveal one settlement
  // later.
  const auto s = static_cast<std::uint32_t>(sensor);
  const util::SimTime settle = sample_exp(
      kStreamSettleReveal, s, nonce,
      util::to_millis(config_.block_interval));
  loop_.post(loop_.now() + sample_wan(kStreamWanReveal, s, nonce) + settle,
             recipient_strand(s), code_reveal_seen_, sensor, nonce);
}

void CityEngine::on_reveal_seen(std::uint64_t sensor, std::uint64_t nonce) {
  // Recipient strand. Real crypto closes the loop: decrypt the ciphertext
  // with the provisioned key and compare against the expected reading.
  const auto s = static_cast<std::uint32_t>(sensor);
  const crypto::Aes256 aes(sensor_key(s));
  const crypto::AesBlock plain = aes.decrypt_block(cipher_[s]);
  if (plain != reading_for(s, nonce)) {
    verify_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const util::SimTime now = loop_.now();
  const auto latency = static_cast<std::uint64_t>(now - start_us_[s]);
  completed_.fetch_add(1, std::memory_order_relaxed);
  latency_sum_us_.fetch_add(latency, std::memory_order_relaxed);
  // CAS min/max: exact and order-free.
  std::uint64_t cur = latency_min_us_.load(std::memory_order_relaxed);
  while (latency < cur && !latency_min_us_.compare_exchange_weak(
                              cur, latency, std::memory_order_relaxed)) {
  }
  cur = latency_max_us_.load(std::memory_order_relaxed);
  while (latency > cur && !latency_max_us_.compare_exchange_weak(
                              cur, latency, std::memory_order_relaxed)) {
  }
  // Commutative trace digest: wrapping add of a full-avalanche mix over
  // the exchange identity and outcome. Identical sets of completions give
  // identical digests regardless of execution interleaving.
  const std::uint64_t h = util::mix64(
      util::mix64(sensor ^ nonce * 0x9e3779b97f4a7c15ULL) ^
      util::mix64(static_cast<std::uint64_t>(now)) ^ latency);
  digest_.fetch_add(h, std::memory_order_relaxed);

  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("bcwan_city_exchanges_total",
                "Completed city-scale fair exchanges")
        .add();
    reg.histogram("bcwan_city_exchange_latency_seconds",
                  "City-scale end-to-end exchange latency")
        .observe(static_cast<double>(latency) / 1e6);
  }
  if (config_.keep_trace) {
    const std::lock_guard<std::mutex> lock(trace_mutex_);
    trace_.push_back(CityTraceRecord{s, nonce, now,
                                     static_cast<util::SimTime>(latency)});
  }

  // Next report: exponential think time, clamped well above the lookahead.
  const util::SimTime interval = std::max<util::SimTime>(
      sample_exp(kStreamInterval, s, nonce,
                 util::to_millis(config_.report_interval_mean)),
      util::kSecond);
  loop_.post(now + interval, sensor_strand(s), code_report_due_, sensor,
             nonce + 1);
}

void CityEngine::run_for(util::SimTime duration) {
  const util::SimTime deadline = loop_.now() + duration;
  if (loop_.pending() == 0) {
    // First run: stagger every sensor's opening report across one mean
    // interval so the city does not transmit in phase.
    for (std::uint32_t s = 0; s < config_.sensors; ++s) {
      util::Rng rng = util::Rng::substream(config_.seed,
                                           stream_word(kStreamStagger, s));
      const auto offset = static_cast<util::SimTime>(rng.below(
          static_cast<std::uint64_t>(
              std::max<util::SimTime>(config_.report_interval_mean, 1))));
      loop_.post(loop_.now() + std::max(offset, config_.lookahead),
                 sensor_strand(s), code_report_due_, s, 0);
    }
  }
  loop_.run_until(deadline);
}

double CityEngine::latency_mean_s() const noexcept {
  const std::uint64_t n = latency_count();
  if (n == 0) return 0.0;
  return static_cast<double>(latency_sum_us_.load(std::memory_order_relaxed)) /
         (1e6 * static_cast<double>(n));
}

std::vector<CityTraceRecord> CityEngine::sorted_trace() const {
  const std::lock_guard<std::mutex> lock(trace_mutex_);
  std::vector<CityTraceRecord> out = trace_;
  std::sort(out.begin(), out.end(),
            [](const CityTraceRecord& a, const CityTraceRecord& b) {
              if (a.completed_at != b.completed_at)
                return a.completed_at < b.completed_at;
              if (a.sensor != b.sensor) return a.sensor < b.sensor;
              return a.nonce < b.nonce;
            });
  return out;
}

}  // namespace bcwan::sim

#include "sim/scenario.hpp"

#include "bcwan/election.hpp"
#include "telemetry/metrics.hpp"

#include <cstdio>
#include <stdexcept>

namespace bcwan::sim {

namespace {

// The paper's headline figure, split into its protocol phases. Virtual-time
// durations, exported in seconds.
constexpr const char* kPhaseFamily = "bcwan_exchange_phase_seconds";
constexpr const char* kPhaseHelp =
    "Virtual time spent per fair-exchange phase "
    "(uplink, offer, reveal, decrypt)";

void telemetry_note_exchange(const char* outcome) {
  if (!telemetry::enabled()) return;
  telemetry::registry()
      .counter("bcwan_exchange_outcomes_total", "outcome", outcome,
               "Fair exchanges by final outcome")
      .add();
}

}  // namespace

core::IpAddress host_ip(p2p::HostId host) {
  return 0x0a000000u | static_cast<core::IpAddress>(host & 0xff);
}

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  build();
}

Scenario::~Scenario() {
  // The collector captures `this`; it must not outlive the scenario.
  if (telemetry_collector_id_ != 0)
    telemetry::registry().remove_collector(telemetry_collector_id_);
}

std::ptrdiff_t Scenario::sensor_index_for(
    std::uint16_t device_id) const noexcept {
  const int actor = device_id / 256;
  const int index = device_id % 256;
  if (actor >= config_.actors || index >= config_.sensors_per_actor) return -1;
  return static_cast<std::ptrdiff_t>(actor) * config_.sensors_per_actor +
         index;
}

void Scenario::clear_exchange_start(std::size_t sensor_index) noexcept {
  if (exchange_start_[sensor_index] != kNoMark) {
    exchange_start_[sensor_index] = kNoMark;
    --in_flight_;
  }
}

void Scenario::observe_phase(std::uint16_t device_id, const char* phase) {
  if (!telemetry::enabled()) return;
  const std::ptrdiff_t idx = sensor_index_for(device_id);
  if (idx < 0 || phase_mark_[static_cast<std::size_t>(idx)] == kNoMark) return;
  const util::SimTime now = loop_.now();
  telemetry::registry()
      .histogram(kPhaseFamily, "phase", phase, kPhaseHelp)
      .observe(util::to_seconds(now - phase_mark_[static_cast<std::size_t>(idx)]));
  phase_mark_[static_cast<std::size_t>(idx)] = now;
}

void Scenario::end_exchange_telemetry(std::uint16_t device_id,
                                      const char* outcome) {
  const std::ptrdiff_t idx = sensor_index_for(device_id);
  if (idx >= 0) phase_mark_[static_cast<std::size_t>(idx)] = kNoMark;
  telemetry_note_exchange(outcome);
}

void Scenario::build() {
  // Proof-of-stake mode (§6 extension): if no validator set was supplied,
  // the master host is the sole slot leader — the federation analogue of
  // the paper's single mining EC2 instance. Must happen before any
  // Blockchain is constructed so every node validates the same schedule.
  const crypto::EcKeyPair master_key =
      crypto::ec_from_seed(util::str_bytes("scenario-master"));
  if (config_.chain_params.consensus == chain::ConsensusMode::kProofOfStake &&
      config_.chain_params.validators.empty()) {
    config_.chain_params.validators.push_back(
        chain::Validator{crypto::ec_pubkey_encode(master_key.pub), 1});
  }

  net_ = std::make_unique<p2p::SimNet>(loop_, rng_.next());
  net_->set_default_latency(config_.wan_latency);
  radio_ = std::make_unique<lora::LoraRadio>(loop_, rng_.next(),
                                             config_.radio_config);

  p2p::ChainNodeConfig node_config;
  node_config.block_verification_stall = config_.block_verification_stall;
  node_config.stall_median_s = config_.stall_median_s;
  node_config.stall_sigma = config_.stall_sigma;
  node_config.store_fsync = config_.persist_fsync;
  node_config.snapshot_interval = config_.snapshot_interval;

  // Actor hosts (the "PlanetLab nodes").
  for (int a = 0; a < config_.actors; ++a) {
    const p2p::HostId host = net_->add_host("actor" + std::to_string(a));
    if (!config_.persist_dir.empty()) {
      node_config.store_dir =
          config_.persist_dir + "/actor-" + std::to_string(a);
    }
    actor_nodes_.push_back(std::make_unique<p2p::ChainNode>(
        loop_, *net_, host, config_.chain_params, node_config, rng_.next()));
  }
  // Master host (the "AWS EC2 instance"): mines, never stalls the others.
  {
    p2p::ChainNodeConfig master_config = node_config;
    if (!config_.persist_dir.empty())
      master_config.store_dir = config_.persist_dir + "/master";
    const p2p::HostId host = net_->add_host("master");
    master_node_ = std::make_unique<p2p::ChainNode>(
        loop_, *net_, host, config_.chain_params, master_config, rng_.next());
  }
  master_wallet_ = std::make_unique<chain::Wallet>(
      chain::Wallet::from_seed("scenario-master"));
  miner_ = std::make_unique<chain::Miner>(config_.chain_params,
                                          master_wallet_->pkh());
  miner_->set_pos_key(master_key);

  // Per-actor agents. Each actor runs `gateways_per_actor` gateway agents
  // on its host and elects one master (§4.2 footnote 3); its devices — and
  // the latency hooks — use the master.
  for (int a = 0; a < config_.actors; ++a) {
    auto& node = *actor_nodes_[a];
    core::DirectoryOptions dir_options;
    if (!config_.persist_dir.empty()) {
      // A restarted persistent actor recovers its directory from the index
      // file instead of rescanning the chain.
      dir_options.persist_path = config_.persist_dir + "/actor-" +
                                 std::to_string(a) + "/directory.idx";
    }
    directories_.push_back(
        std::make_unique<core::Directory>(node, std::move(dir_options)));

    std::vector<script::PubKeyHash> candidates;
    std::vector<core::GatewayAgent*> actor_gateways;
    for (int g = 0; g < config_.gateways_per_actor; ++g) {
      gateways_.push_back(std::make_unique<core::GatewayAgent>(
          loop_, *net_, *radio_, node, *directories_.back(),
          chain::Wallet::from_seed("gateway-" + std::to_string(a) + "-" +
                                   std::to_string(g)),
          config_.timing, config_.gateway_config, rng_.next()));
      core::GatewayAgent* gw = gateways_.back().get();
      const lora::RadioGatewayId radio_gw = radio_->add_gateway(
          [gw](lora::RadioDeviceId from, const util::Bytes& frame) {
            gw->on_uplink(from, frame);
          });
      gw->attach_radio(radio_gw);
      candidates.push_back(gw->pkh());
      actor_gateways.push_back(gw);
    }
    masters_.push_back(core::elect_master_gateway(candidates));

    recipients_.push_back(std::make_unique<core::RecipientAgent>(
        loop_, *net_, node,
        chain::Wallet::from_seed("recipient-" + std::to_string(a)),
        config_.timing, config_.recipient_config, rng_.next()));

    // The host carries both the recipient (DELIVER) and its gateways
    // (DELIVER_ACK); each agent filters on message type.
    core::RecipientAgent* recipient = recipients_.back().get();
    node.set_app_handler([recipient, actor_gateways](const p2p::Message& msg) {
      recipient->handle_message(msg);
      for (core::GatewayAgent* gw : actor_gateways) gw->handle_message(msg);
    });

    // Latency hooks go on the elected master (the one devices talk to).
    core::GatewayAgent* gw = &gateway(a);
    gw->on_ephemeral_sent = [this](std::uint16_t device_id) {
      // Only count exchanges the device is actually running (a duty-delayed
      // resend after a write-off must not plant a phantom entry), and keep
      // the earliest timestamp (retries must not skew the latency clock).
      const core::SensorNode* sensor = sensor_for(device_id);
      if (sensor == nullptr || !sensor->busy()) return;
      const std::ptrdiff_t idx = sensor_index_for(device_id);
      if (idx < 0) return;
      const auto i = static_cast<std::size_t>(idx);
      if (exchange_start_[i] == kNoMark) {
        exchange_start_[i] = loop_.now();
        ++in_flight_;
      }
      if (telemetry::enabled()) phase_mark_[i] = loop_.now();
    };
    // Per-phase latency marks: the same clock the headline latency uses,
    // split at each protocol transition.
    gw->on_forwarded = [this](std::uint16_t device_id) {
      observe_phase(device_id, "uplink");
    };
    recipient->on_offer_posted = [this](std::uint16_t device_id) {
      observe_phase(device_id, "offer");
    };
    gw->on_redeemed = [this](std::uint16_t device_id) {
      observe_phase(device_id, "reveal");
    };
    // A reclaimed exchange is over (no data); free the device for new work.
    recipient->on_reclaimed = [this](std::uint16_t device_id) {
      const std::ptrdiff_t idx = sensor_index_for(device_id);
      if (idx >= 0) clear_exchange_start(static_cast<std::size_t>(idx));
      end_exchange_telemetry(device_id, "reclaimed");
      reschedule_report(device_id);
    };
    recipient->on_reading = [this](std::uint16_t device_id,
                                   const util::Bytes&) {
      const std::ptrdiff_t idx = sensor_index_for(device_id);
      if (idx < 0) return;
      const auto sensor_index = static_cast<std::size_t>(idx);
      if (exchange_start_[sensor_index] == kNoMark) return;
      ExchangeRecord record;
      record.device_id = device_id;
      record.ephemeral_sent_at = exchange_start_[sensor_index];
      record.decrypted_at = loop_.now();
      clear_exchange_start(sensor_index);
      observe_phase(device_id, "decrypt");
      end_exchange_telemetry(device_id, "success");
      if (telemetry::enabled()) {
        telemetry::registry()
            .histogram("bcwan_exchange_latency_seconds",
                       "End-to-end exchange latency (ePk sent to decrypt)")
            .observe(record.latency_s());
      }
      latency_streamed_.add(record.latency_s());
      if (records_.size() < config_.keep_records) {
        latency_.add(record.latency_s());
        records_.push_back(record);
      }
      ++completed_;
      // Schedule the device's next report (duty-aware pacing; the run loop
      // starts it once the time comes).
      reschedule_report(device_id);
    };
  }

  // Sensors: actor a's devices attach to the *next* actor's elected master
  // gateway — every message crosses a foreign gateway, the situation BcWAN
  // exists for.
  lora::LoraConfig phy;
  phy.sf = config_.sf;
  for (int a = 0; a < config_.actors; ++a) {
    const int foreign_actor = (a + 1) % config_.actors;
    const int foreign = foreign_actor * config_.gateways_per_actor +
                        static_cast<int>(masters_[foreign_actor]);
    for (int s = 0; s < config_.sensors_per_actor; ++s) {
      const auto device_id = static_cast<std::uint16_t>(a * 256 + s);
      core::NodeProvisioning provisioning =
          core::provision_node(device_id, recipients_[a]->pkh(), rng_);
      recipients_[a]->register_device(provisioning);

      sensors_.push_back(std::make_unique<core::SensorNode>(
          loop_, *radio_, std::move(provisioning), config_.timing,
          core::SensorNodeConfig{}, rng_.next()));
      core::SensorNode* sensor = sensors_.back().get();
      // A failed exchange must not leave a stale start timestamp pinning
      // the device as "in flight".
      sensor->on_exchange_failed = [this](std::uint16_t id) {
        const std::ptrdiff_t idx = sensor_index_for(id);
        if (idx >= 0) clear_exchange_start(static_cast<std::size_t>(idx));
        end_exchange_telemetry(id, "failed");
        reschedule_report(id);
      };
      const lora::RadioDeviceId radio_device = radio_->add_device(
          static_cast<lora::RadioGatewayId>(foreign), phy,
          config_.duty_cycle,
          [sensor](const util::Bytes& frame) { sensor->on_downlink(frame); });
      sensor->attach_radio(radio_device);
      next_report_.push_back(0);
      exchange_start_.push_back(kNoMark);
      phase_mark_.push_back(kNoMark);
    }
  }

  if (telemetry::compiled_in()) {
    // Export-time snapshot of scenario aggregates (no hot-path cost).
    telemetry_collector_id_ = telemetry::registry().add_collector([this] {
      auto& reg = telemetry::registry();
      reg.gauge("bcwan_exchange_in_flight",
                "Exchanges started but not yet completed or written off")
          .set(static_cast<double>(in_flight_));
      reg.gauge("bcwan_sim_virtual_seconds",
                "Scenario event-loop virtual time")
          .set(util::to_seconds(loop_.now()));
      reg.gauge("bcwan_sim_blocks_mined", "Blocks mined by the master")
          .set(static_cast<double>(blocks_mined_));
      std::uint64_t request_retries = 0, data_retx = 0, restarts = 0;
      for (const auto& sensor : sensors_) {
        request_retries += sensor->request_retries();
        data_retx += sensor->data_retransmissions();
        restarts += sensor->exchange_restarts();
      }
      reg.gauge("bcwan_exchange_request_retries",
                "ePk request retries summed over all sensors")
          .set(static_cast<double>(request_retries));
      reg.gauge("bcwan_exchange_data_retransmissions",
                "Data-frame retransmissions summed over all sensors")
          .set(static_cast<double>(data_retx));
      reg.gauge("bcwan_exchange_restarts",
                "Full exchange restarts summed over all sensors")
          .set(static_cast<double>(restarts));
    });
  }
}

void Scenario::bootstrap() {
  // Phase 1: mine the funding chain quickly (the paper's EC2 master
  // "bootstraps the nodes"). Blocks are spaced 1 virtual second so gossip
  // settles between them.
  // Enough mature coinbases to cover every recipient's working budget.
  const auto rewards_needed = static_cast<int>(
      (static_cast<chain::Amount>(config_.actors) * config_.recipient_funding +
       config_.chain_params.block_reward - 1) /
      config_.chain_params.block_reward);
  const int funding_blocks =
      config_.chain_params.coinbase_maturity + rewards_needed + 2;
  for (int i = 0; i < funding_blocks; ++i) {
    loop_.run_until(loop_.now() + util::kSecond);
    const chain::Block block = miner_->mine(
        master_node_->chain(), master_node_->mempool(),
        static_cast<std::uint64_t>(loop_.now() / util::kSecond));
    master_node_->submit_block(block);
    ++blocks_mined_;
  }
  loop_.run_until(loop_.now() + util::kSecond);

  // Phase 2: pay every recipient its working budget.
  for (int a = 0; a < config_.actors; ++a) {
    const auto tx = master_wallet_->create_payment(
        master_node_->chain(), &master_node_->mempool(),
        recipients_[static_cast<std::size_t>(a)]->pkh(),
        config_.recipient_funding, 1000);
    if (!tx) throw std::runtime_error("Scenario: master underfunded");
    if (!master_node_->submit_tx(*tx).ok())
      throw std::runtime_error("Scenario: funding tx rejected");
  }
  loop_.run_until(loop_.now() + util::kSecond);
  {
    const chain::Block block = miner_->mine(
        master_node_->chain(), master_node_->mempool(),
        static_cast<std::uint64_t>(loop_.now() / util::kSecond));
    master_node_->submit_block(block);
    ++blocks_mined_;
  }
  loop_.run_until(loop_.now() + util::kSecond);

  // Phase 3: recipients publish their IPs (§4.3) — these reach every
  // directory through gossip, then get sealed into a block. With block
  // verification stalls enabled the funding block may still be queued at an
  // actor's daemon, so retry until its wallet sees the money.
  for (int a = 0; a < config_.actors; ++a) {
    auto& node = *actor_nodes_[static_cast<std::size_t>(a)];
    bool announced = false;
    for (int attempt = 0; attempt < 900 && !announced; ++attempt) {
      announced = recipients_[static_cast<std::size_t>(a)]->announce_ip(
          host_ip(node.host()), 0);
      if (!announced) loop_.run_until(loop_.now() + util::kSecond);
    }
    if (!announced) throw std::runtime_error("Scenario: announcement failed");
  }
  loop_.run_until(loop_.now() + util::kSecond);
  {
    const chain::Block block = miner_->mine(
        master_node_->chain(), master_node_->mempool(),
        static_cast<std::uint64_t>(loop_.now() / util::kSecond));
    master_node_->submit_block(block);
    ++blocks_mined_;
  }
  loop_.run_until(loop_.now() + util::kSecond);

  // Phase 4: steady-state Poisson mining.
  mining_active_ = true;
  schedule_mining();
}

void Scenario::schedule_mining() {
  const double mean_s = util::to_seconds(config_.chain_params.block_interval);
  const util::SimTime delay = util::from_seconds(rng_.exponential(mean_s));
  mining_timer_armed_ = true;
  loop_.after(delay, [this] {
    if (!mining_active_ || mining_paused_) {
      // The chain of timers stops here; set_mining_paused(false) restarts it.
      mining_timer_armed_ = false;
      return;
    }
    const chain::Block block = miner_->mine(
        master_node_->chain(), master_node_->mempool(),
        static_cast<std::uint64_t>(loop_.now() / util::kSecond));
    master_node_->submit_block(block);
    ++blocks_mined_;
    schedule_mining();
  });
}

void Scenario::set_mining_paused(bool paused) {
  mining_paused_ = paused;
  // Re-arm only if the timer chain actually died while paused — a resume
  // racing a still-armed timer must not fork a second chain (doubled rate).
  if (!paused && mining_active_ && !mining_timer_armed_) schedule_mining();
}

core::SensorNode* Scenario::sensor_for(std::uint16_t device_id) {
  const std::ptrdiff_t idx = sensor_index_for(device_id);
  if (idx < 0 || static_cast<std::size_t>(idx) >= sensors_.size())
    return nullptr;
  return sensors_[static_cast<std::size_t>(idx)].get();
}

void Scenario::reschedule_report(std::uint16_t device_id) {
  const std::ptrdiff_t idx = sensor_index_for(device_id);
  if (idx >= 0 && static_cast<std::size_t>(idx) < next_report_.size()) {
    next_report_[static_cast<std::size_t>(idx)] =
        loop_.now() + util::from_seconds(rng_.exponential(
                          util::to_seconds(config_.report_interval_mean)));
  }
}

void Scenario::start_sensor(std::size_t sensor_index) {
  core::SensorNode& sensor = *sensors_[sensor_index];
  if (sensor.busy()) return;
  // A small reading, like the paper's examples ("temperature, humidity
  // level, ...") — must stay under one AES block.
  char reading[16];
  std::snprintf(reading, sizeof reading, "t=%02d.%drh=%02d%%",
                static_cast<int>(rng_.range(15, 30)),
                static_cast<int>(rng_.below(10)),
                static_cast<int>(rng_.range(20, 70)));
  sensor.start_exchange(util::str_bytes(reading));
}

void Scenario::run_exchanges(std::size_t total_exchanges,
                             util::SimTime deadline) {
  target_exchanges_ = completed_ + total_exchanges;
  // Stagger initial reports across one mean interval so 150 sensors don't
  // all transmit in the same instant.
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    next_report_[i] =
        loop_.now() +
        static_cast<util::SimTime>(rng_.below(static_cast<std::uint64_t>(
            std::max<util::SimTime>(config_.report_interval_mean, 1))));
  }
  const util::SimTime hard_deadline = loop_.now() + deadline;
  while (completed_ < target_exchanges_ && loop_.now() < hard_deadline) {
    loop_.run_until(loop_.now() + util::kSecond);
    // Write off exchanges whose data frame died on the air (unconfirmed
    // LoRa uplinks are fire-and-forget): their devices become idle again.
    // Linear sweep over the dense per-sensor array.
    for (std::size_t i = 0; i < exchange_start_.size(); ++i) {
      if (exchange_start_[i] == kNoMark ||
          loop_.now() - exchange_start_[i] <= config_.exchange_stale_after) {
        continue;
      }
      const std::uint16_t device_id = sensors_[i]->device_id();
      end_exchange_telemetry(device_id, "timeout");
      reschedule_report(device_id);
      clear_exchange_start(i);
    }
    // Keep idle devices working (e.g. a failed exchange freed a device).
    // A device is idle only if its node is not mid-protocol AND no exchange
    // of its is still settling on-chain.
    if (completed_ + in_flight_ < target_exchanges_) {
      for (std::size_t i = 0; i < sensors_.size(); ++i) {
        if (completed_ + in_flight_ >= target_exchanges_) break;
        core::SensorNode& sensor = *sensors_[i];
        if (loop_.now() >= next_report_[i] && !sensor.busy() &&
            exchange_start_[i] == kNoMark) {
          start_sensor(i);
          // Until this exchange completes (or is written off) the device
          // is covered by busy()/exchange_start_; push next_report_ out so
          // the loop does not double-start while the request is in flight.
          next_report_[i] = loop_.now() + util::kHour;
        }
      }
    }
  }
}

}  // namespace bcwan::sim

// Federation scenario builder — the paper's §5.2 evaluation setup in one
// object.
//
// Reproduces: "We chose 5 PlanetLab nodes with similar specifications ...
// we simulated 30 sensors per node at a 1% duty cycle using a LoRa
// Spreading Factor level 7 ... An AWS EC2 instance is used as a master node
// only to 1) bootstrap the nodes and 2) mine blocks. Mining is disabled on
// the PlanetLab nodes."
//
// Each actor hosts a gateway agent and a recipient agent on one federation
// host. Sensors belong to one actor but attach to a *foreign* actor's
// gateway (the roaming case BcWAN exists for). A master host mines on a
// Poisson schedule and bootstraps everyone's funds.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "bcwan/directory.hpp"
#include "p2p/network.hpp"
#include "bcwan/gateway_agent.hpp"
#include "bcwan/recipient_agent.hpp"
#include "bcwan/sensor_node.hpp"
#include "chain/miner.hpp"
#include "util/stats.hpp"

namespace bcwan::sim {

struct ScenarioConfig {
  int actors = 5;
  int sensors_per_actor = 30;
  /// Gateways per actor (paper §4.2 footnote 3): with more than one, the
  /// actor's devices address the *elected master* gateway.
  int gateways_per_actor = 1;
  double duty_cycle = 0.01;
  lora::SpreadingFactor sf = lora::SpreadingFactor::kSF7;

  /// Fig. 5 (false) vs Fig. 6 (true).
  bool block_verification_stall = false;
  double stall_median_s = 10.1;
  double stall_sigma = 0.5;

  chain::ChainParams chain_params;
  core::TimingModel timing;
  core::GatewayConfig gateway_config;
  core::RecipientConfig recipient_config;
  lora::RadioConfig radio_config;
  p2p::LatencyModel wan_latency;

  chain::Amount recipient_funding = 100 * chain::kCoin;
  /// Mean inter-report interval per sensor (exponential). Must sit above
  /// the 1%-duty floor (~25 s of credit accrual per 132 B exchange at SF7)
  /// or the duty-cycle wait leaks into the measured exchange latency.
  util::SimTime report_interval_mean = 40 * util::kSecond;
  /// An exchange with no completion after this long is written off (its
  /// data frame died on the air); the device is re-armed.
  util::SimTime exchange_stale_after = 10 * util::kMinute;
  /// Cap on retained per-exchange material (records() entries and
  /// latency_stats() samples). The default keeps everything — the paper-scale
  /// figures want the raw samples; long soak runs set a cap and read the
  /// O(1) streamed_latency() / telemetry histograms instead, which are always
  /// maintained regardless of the cap.
  std::size_t keep_records = std::numeric_limits<std::size_t>::max();
  std::uint64_t seed = 1;

  /// Root directory for durable per-host chainstates. Empty (the default —
  /// benches and most tests) keeps every daemon in-memory; non-empty gives
  /// each actor host `<persist_dir>/actor-<i>` and the master
  /// `<persist_dir>/master`, so gateway/miner crash faults go through real
  /// disk recovery instead of a state wipe.
  std::string persist_dir;
  /// fsync the block log on every append (see StoreOptions).
  bool persist_fsync = true;
  /// Blocks between automatic chainstate snapshots on persistent hosts.
  std::uint64_t snapshot_interval = 16;
};

/// One completed (or failed) exchange, as the paper measures it: "from the
/// first message from the gateway to the decryption of the message by the
/// recipient".
struct ExchangeRecord {
  std::uint16_t device_id = 0;
  util::SimTime ephemeral_sent_at = 0;
  util::SimTime decrypted_at = 0;
  double latency_s() const {
    return util::to_seconds(decrypted_at - ephemeral_sent_at);
  }
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  /// Mines the funding chain, pays every recipient, publishes directory
  /// announcements, provisions all sensors, and starts steady-state Poisson
  /// mining on the master host.
  void bootstrap();

  /// Drive the federation until `total_exchanges` have completed (or the
  /// virtual deadline passes). Each completion is also appended to
  /// latency_stats(). Sensors re-arm automatically after each exchange.
  void run_exchanges(std::size_t total_exchanges,
                     util::SimTime deadline = 24 * util::kHour);

  /// Retained latency samples; bounded by ScenarioConfig::keep_records.
  const util::SampleStats& latency_stats() const noexcept { return latency_; }
  /// O(1)-memory running latency statistics over *every* completed
  /// exchange, unaffected by keep_records.
  const util::StreamingStats& streamed_latency() const noexcept {
    return latency_streamed_;
  }
  const std::vector<ExchangeRecord>& records() const noexcept {
    return records_;
  }

  p2p::EventLoop& loop() noexcept { return loop_; }
  p2p::SimNet& net() noexcept { return *net_; }
  lora::LoraRadio& radio() noexcept { return *radio_; }
  const ScenarioConfig& config() const noexcept { return config_; }

  /// Fault injection: freeze/unfreeze the master's Poisson mining loop
  /// (the "miner stall" fault — the EC2 box hangs, nobody else mines).
  void set_mining_paused(bool paused);
  bool mining_paused() const noexcept { return mining_paused_; }

  int actor_count() const noexcept { return config_.actors; }
  p2p::ChainNode& actor_node(int i) { return *actor_nodes_[i]; }
  /// The actor's elected master gateway (its only one by default).
  core::GatewayAgent& gateway(int actor) {
    return *gateways_[static_cast<std::size_t>(
        actor * config_.gateways_per_actor) + masters_[actor]];
  }
  /// Any of the actor's gateways, by index.
  core::GatewayAgent& gateway_at(int actor, int index) {
    return *gateways_[static_cast<std::size_t>(
        actor * config_.gateways_per_actor + index)];
  }
  std::size_t master_index(int actor) const { return masters_[actor]; }
  core::RecipientAgent& recipient(int i) { return *recipients_[i]; }
  core::SensorNode& sensor(int actor, int index) {
    return *sensors_[static_cast<std::size_t>(actor * config_.sensors_per_actor + index)];
  }
  /// Device-id lookup (actor*256 + index); nullptr if out of range.
  core::SensorNode* sensor_for(std::uint16_t device_id);
  std::size_t sensor_count() const noexcept { return sensors_.size(); }
  std::size_t gateway_count() const noexcept { return gateways_.size(); }
  core::GatewayAgent& gateway_by_index(std::size_t i) { return *gateways_[i]; }
  /// The chain daemon co-located with a gateway (its actor's host) — the
  /// chaos layer crashes both together on persistent deployments.
  p2p::ChainNode& node_for_gateway(std::size_t gateway_index) {
    return *actor_nodes_[gateway_index /
                         static_cast<std::size_t>(config_.gateways_per_actor)];
  }
  p2p::ChainNode& master_node() { return *master_node_; }
  const chain::Wallet& master_wallet() const { return *master_wallet_; }
  /// The master's block assembler (valid after bootstrap()); the adversary
  /// layer installs censorship filters here.
  chain::Miner& miner() noexcept { return *miner_; }

  std::uint64_t exchanges_completed() const noexcept { return completed_; }
  std::uint64_t blocks_mined() const noexcept { return blocks_mined_; }

 private:
  /// Sentinel for "no timestamp" in the indexed per-sensor arrays.
  static constexpr util::SimTime kNoMark = -1;

  void build();
  void schedule_mining();
  void start_sensor(std::size_t sensor_index);
  void reschedule_report(std::uint16_t device_id);
  /// device_id (actor*256 + index) -> dense sensor index; -1 if invalid.
  std::ptrdiff_t sensor_index_for(std::uint16_t device_id) const noexcept;
  void clear_exchange_start(std::size_t sensor_index) noexcept;
  /// Observe the virtual time since the device's last phase mark into
  /// bcwan_exchange_phase_seconds{phase=...} and advance the mark.
  void observe_phase(std::uint16_t device_id, const char* phase);
  void end_exchange_telemetry(std::uint16_t device_id, const char* outcome);

  ScenarioConfig config_;
  p2p::EventLoop loop_;
  util::Rng rng_;
  std::unique_ptr<p2p::SimNet> net_;
  std::unique_ptr<lora::LoraRadio> radio_;

  std::vector<std::unique_ptr<p2p::ChainNode>> actor_nodes_;
  std::vector<std::unique_ptr<core::Directory>> directories_;
  std::vector<std::unique_ptr<core::GatewayAgent>> gateways_;
  std::vector<std::size_t> masters_;  // elected master per actor
  std::vector<std::unique_ptr<core::RecipientAgent>> recipients_;
  std::vector<std::unique_ptr<core::SensorNode>> sensors_;

  std::unique_ptr<p2p::ChainNode> master_node_;
  std::unique_ptr<chain::Wallet> master_wallet_;
  std::unique_ptr<chain::Miner> miner_;
  bool mining_active_ = false;
  bool mining_paused_ = false;
  bool mining_timer_armed_ = false;
  std::uint64_t blocks_mined_ = 0;

  // Per-sensor earliest next report time (duty-aware pacing).
  std::vector<util::SimTime> next_report_;

  // Latency bookkeeping, indexed by dense sensor index (kNoMark = idle):
  // ePk-sent timestamp per sensor. A flat array instead of a hash map —
  // the staleness sweep and the in-flight gauge walk it linearly.
  std::vector<util::SimTime> exchange_start_;
  // Telemetry: start of the exchange phase currently in flight per sensor
  // (ePk sent -> uplink -> offer -> reveal -> decrypt).
  std::vector<util::SimTime> phase_mark_;
  std::size_t in_flight_ = 0;  // exchange_start_ entries != kNoMark
  std::uint64_t telemetry_collector_id_ = 0;
  util::SampleStats latency_;
  util::StreamingStats latency_streamed_;
  std::vector<ExchangeRecord> records_;
  std::uint64_t completed_ = 0;
  std::size_t target_exchanges_ = 0;
};

/// 10.0.0.<host id> — the simulator's IP plan (Directory stores IPs, the
/// gateway agent resolves them back to SimNet hosts).
core::IpAddress host_ip(p2p::HostId host);

}  // namespace bcwan::sim

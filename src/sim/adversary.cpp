#include "sim/adversary.hpp"

#include <cmath>
#include <cstdio>

#include "bcwan/election.hpp"
#include "lora/frame.hpp"
#include "script/templates.hpp"
#include "telemetry/metrics.hpp"

namespace bcwan::sim {

namespace {

void telemetry_note_attack(const char* kind) {
  if (!telemetry::enabled()) return;
  telemetry::registry()
      .counter("bcwan_adversary_attacks_total", "kind", kind,
               "Byzantine attacks launched by kind")
      .add();
}

const char* misbehavior_name(core::GatewayMisbehavior m) {
  switch (m) {
    case core::GatewayMisbehavior::kHonest:
      return "gateway_honest";
    case core::GatewayMisbehavior::kWithholdKey:
      return "gateway_withhold";
    case core::GatewayMisbehavior::kGarbleKey:
      return "gateway_garble";
    case core::GatewayMisbehavior::kDoubleClaim:
      return "gateway_double_claim";
  }
  return "gateway_unknown";
}

/// Expected-count -> integer draw: floor(lambda) events plus one more with
/// probability frac(lambda). (Same sampling as FaultPlan::unleash.)
int sample_count(util::Rng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  const double whole = std::floor(lambda);
  int n = static_cast<int>(whole);
  if (rng.chance(lambda - whole)) ++n;
  return n;
}

}  // namespace

AdversaryPlan::AdversaryPlan(Scenario& scenario, std::uint64_t seed)
    : scenario_(scenario), rng_(seed) {}

void AdversaryPlan::record(util::SimTime at, const std::string& what) {
  char prefix[32];
  std::snprintf(prefix, sizeof prefix, "t=%.1fs ", util::to_seconds(at));
  log_.push_back(prefix + what);
}

lora::RadioDeviceId AdversaryPlan::attacker_device_for(
    lora::RadioGatewayId gateway) {
  const auto it = attacker_devices_.find(gateway);
  if (it != attacker_devices_.end()) return it->second;
  lora::LoraConfig phy;
  phy.sf = scenario_.config().sf;
  // Duty cycle 1.0: the attacker's transmitter does not respect ETSI.
  const lora::RadioDeviceId device = scenario_.radio().add_device(
      gateway, phy, 1.0, [](const util::Bytes&) {});
  attacker_devices_[gateway] = device;
  return device;
}

void AdversaryPlan::corrupt_gateway(std::size_t gateway_index,
                                    core::GatewayMisbehavior m,
                                    util::SimTime at) {
  scenario_.loop().at(at, [this, gateway_index, m] {
    scenario_.gateway_by_index(gateway_index).set_misbehavior(m);
    if (m != core::GatewayMisbehavior::kHonest) {
      ++cheats_;
      telemetry_note_attack(misbehavior_name(m));
    }
    record(scenario_.loop().now(),
           std::string(misbehavior_name(m)) + ": #" +
               std::to_string(gateway_index));
  });
}

void AdversaryPlan::fee_snipe(std::size_t gateway_index, util::SimTime at) {
  scenario_.loop().at(at, [this, gateway_index] {
    const std::size_t released =
        scenario_.gateway_by_index(gateway_index).release_withheld_redeems();
    ++snipes_;
    telemetry_note_attack("fee_snipe");
    record(scenario_.loop().now(),
           "fee snipe: #" + std::to_string(gateway_index) + " released " +
               std::to_string(released) + " withheld redeems");
  });
}

void AdversaryPlan::censor_reveals(util::SimTime at, util::SimTime duration) {
  scenario_.loop().at(at, [this] {
    scenario_.miner().set_tx_filter([](const chain::Transaction& tx) {
      for (const chain::TxIn& in : tx.vin) {
        if (script::extract_revealed_key(in.script_sig)) return false;
      }
      return true;
    });
    ++censorships_;
    telemetry_note_attack("censorship");
    record(scenario_.loop().now(), "reveal censorship begins");
  });
  scenario_.loop().at(at + duration, [this] {
    scenario_.miner().set_tx_filter(nullptr);
    record(scenario_.loop().now(), "reveal censorship lifted");
  });
}

void AdversaryPlan::jam_lora(util::SimTime at, util::SimTime duration) {
  scenario_.loop().at(at, [this, duration] {
    scenario_.radio().jam_until(scenario_.loop().now() + duration);
    ++jams_;
    telemetry_note_attack("jam");
    record(scenario_.loop().now(),
           "jamming window open for " +
               std::to_string(util::to_seconds(duration)) + "s");
  });
}

void AdversaryPlan::flip_bits(double probability) {
  scenario_.radio().set_uplink_mangler([this,
                                        probability](util::Bytes& frame) {
    if (!rng_.chance(probability)) return false;
    const auto type = lora::peek_frame_type(frame);
    if (!type || *type != lora::FrameType::kUplinkData) return false;
    // Corrupt the sealed payload, not the framing: decode, flip one random
    // bit of Em or Sig, re-encode. The frame still parses downstream —
    // only the RSA-512 envelope signature can catch it.
    auto data = lora::UplinkDataFrame::decode(frame);
    if (!data) return false;
    const std::size_t payload = data->em.size() + data->sig.size();
    if (payload == 0) return false;
    const std::size_t target = rng_.below(payload);
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << rng_.below(8));
    if (target < data->em.size()) {
      data->em[target] ^= bit;
    } else {
      data->sig[target - data->em.size()] ^= bit;
    }
    frame = data->encode();
    telemetry_note_attack("bitflip");
    return true;
  });
  record(scenario_.loop().now(),
         "bit-flip mangler installed (p=" + std::to_string(probability) + ")");
}

void AdversaryPlan::replay_data_frames(double probability,
                                       util::SimTime delay) {
  scenario_.radio().set_uplink_tap([this, probability, delay](
                                       lora::RadioGatewayId gateway,
                                       lora::RadioDeviceId /*from*/,
                                       const util::Bytes& frame) {
    const auto type = lora::peek_frame_type(frame);
    if (!type || *type != lora::FrameType::kUplinkData) return;
    const std::string key(frame.begin(), frame.end());
    if (replayed_.count(key)) return;  // our own replay coming back around
    if (!rng_.chance(probability)) return;
    replayed_.insert(key);
    scenario_.loop().after(delay, [this, gateway, frame] {
      const lora::RadioDeviceId attacker = attacker_device_for(gateway);
      scenario_.radio().uplink(attacker, frame);
      ++replays_;
      telemetry_note_attack("replay");
      record(scenario_.loop().now(),
             "replayed DATA frame at gateway radio #" +
                 std::to_string(gateway));
    });
  });
  record(scenario_.loop().now(),
         "replay sniffer installed (p=" + std::to_string(probability) + ")");
}

void AdversaryPlan::add_duty_griefer(int actor, int requests, util::SimTime at,
                                     util::SimTime spacing) {
  const int target =
      actor * scenario_.config().gateways_per_actor +
      static_cast<int>(scenario_.master_index(actor));
  const std::uint16_t spoofed = next_spoofed_id_++;
  record(at, "duty griefer armed at gateway radio #" + std::to_string(target) +
                 " (" + std::to_string(requests) + " spoofed requests)");
  for (int i = 0; i < requests; ++i) {
    scenario_.loop().at(at + static_cast<util::SimTime>(i) * spacing,
                        [this, target, spoofed] {
                          const lora::RadioDeviceId attacker =
                              attacker_device_for(target);
                          lora::UplinkRequestFrame request;
                          request.device_id = spoofed;
                          scenario_.radio().uplink(attacker, request.encode());
                          ++griefs_;
                          telemetry_note_attack("duty_grief");
                        });
  }
}

void AdversaryPlan::unleash(const AdversaryProfile& profile,
                            util::SimTime horizon) {
  const util::SimTime now = scenario_.loop().now();
  const auto sample_at = [&] {
    return now + static_cast<util::SimTime>(
                     rng_.below(static_cast<std::uint64_t>(
                         std::max<util::SimTime>(horizon, 1))));
  };

  const std::size_t gateways = scenario_.gateway_count();
  if (gateways > 0) {
    for (int i = 0; i < sample_count(rng_, profile.withholding_gateways);
         ++i) {
      const std::size_t g = rng_.below(gateways);
      corrupt_gateway(g, core::GatewayMisbehavior::kWithholdKey, sample_at());
      // Withholding is only profitable with the snipe: dump the redeems
      // near the end of the horizon, racing reclaims at the boundary.
      fee_snipe(g, now + horizon);
    }
    for (int i = 0; i < sample_count(rng_, profile.garbling_gateways); ++i) {
      corrupt_gateway(rng_.below(gateways),
                      core::GatewayMisbehavior::kGarbleKey, sample_at());
    }
    for (int i = 0; i < sample_count(rng_, profile.double_claim_gateways);
         ++i) {
      corrupt_gateway(rng_.below(gateways),
                      core::GatewayMisbehavior::kDoubleClaim, sample_at());
    }
  }

  for (int i = 0; i < sample_count(rng_, profile.censorship_windows); ++i)
    censor_reveals(sample_at(), profile.censorship_duration);

  for (int i = 0; i < sample_count(rng_, profile.jam_windows); ++i)
    jam_lora(sample_at(), profile.jam_duration);

  if (profile.bitflip_probability > 0.0)
    flip_bits(profile.bitflip_probability);

  if (profile.replay_probability > 0.0)
    replay_data_frames(profile.replay_probability, profile.replay_delay);

  for (int i = 0; i < profile.duty_griefers; ++i) {
    add_duty_griefer(static_cast<int>(rng_.below(
                         static_cast<std::size_t>(scenario_.actor_count()))),
                     profile.grief_requests, sample_at(), 30 * util::kSecond);
  }
}

SybilElectionStats run_sybil_election_trial(int honest, int sybils,
                                            int epochs, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<script::PubKeyHash> identities;
  std::vector<double> weights;
  identities.reserve(static_cast<std::size_t>(honest + sybils));
  for (int i = 0; i < honest + sybils; ++i) {
    script::PubKeyHash id{};
    const util::Bytes bytes = rng.bytes(id.size());
    std::copy(bytes.begin(), bytes.end(), id.begin());
    identities.push_back(id);
    // Honest gateways carry weight (stake / paid registration / attested
    // hardware); Sybil identities are free and carry none.
    weights.push_back(i < honest ? 1.0 : 0.0);
  }

  SybilElectionStats stats;
  stats.epochs = epochs;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const std::size_t plain = core::elect_master_gateway(identities, epoch);
    if (plain < static_cast<std::size_t>(honest)) {
      ++stats.honest_wins;
    } else {
      ++stats.sybil_wins;
    }
    const std::size_t weighted =
        core::elect_master_gateway_weighted(identities, weights, epoch);
    if (weighted >= static_cast<std::size_t>(honest))
      ++stats.weighted_sybil_wins;
  }
  return stats;
}

}  // namespace bcwan::sim

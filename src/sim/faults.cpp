#include "sim/faults.hpp"

#include <cmath>
#include <cstdio>

#include "telemetry/metrics.hpp"

namespace bcwan::sim {

namespace {

void telemetry_note_fault(const char* kind) {
  if (!telemetry::enabled()) return;
  telemetry::registry()
      .counter("bcwan_faults_injected_total", "kind", kind,
               "Chaos events injected by kind")
      .add();
}

}  // namespace

FaultPlan::FaultPlan(Scenario& scenario, std::uint64_t seed)
    : scenario_(scenario), rng_(seed) {}

void FaultPlan::record(util::SimTime at, const std::string& what) {
  char prefix[32];
  std::snprintf(prefix, sizeof prefix, "t=%.1fs ", util::to_seconds(at));
  log_.push_back(prefix + what);
}

void FaultPlan::partition_host(p2p::HostId host, util::SimTime at,
                               util::SimTime duration) {
  scenario_.loop().at(at, [this, host] {
    scenario_.net().set_partitioned(host, true);
    ++partitions_;
    telemetry_note_fault("partition");
    record(scenario_.loop().now(),
           "partition open: " + scenario_.net().host_name(host));
  });
  scenario_.loop().at(at + duration, [this, host] {
    scenario_.net().set_partitioned(host, false);
    record(scenario_.loop().now(),
           "partition heal: " + scenario_.net().host_name(host));
  });
}

void FaultPlan::partition_actor(int actor, util::SimTime at,
                                util::SimTime duration) {
  partition_host(scenario_.actor_node(actor).host(), at, duration);
}

void FaultPlan::partition_master(util::SimTime at, util::SimTime duration) {
  partition_host(scenario_.master_node().host(), at, duration);
}

void FaultPlan::degrade_lora(const lora::BurstLossModel& model,
                             util::SimTime at, util::SimTime duration) {
  scenario_.loop().at(at, [this, model, duration] {
    scenario_.radio().set_burst_model(model);
    scenario_.radio().force_channel_state(true, duration);
    ++degradations_;
    telemetry_note_fault("lora_degradation");
    record(scenario_.loop().now(), "lora degraded (forced bad state)");
  });
}

void FaultPlan::crash_gateway(std::size_t gateway_index, util::SimTime at,
                              util::SimTime downtime) {
  scenario_.loop().at(at, [this, gateway_index] {
    scenario_.gateway_by_index(gateway_index).crash();
    auto& node = scenario_.node_for_gateway(gateway_index);
    if (node.persistent() && !node.crashed()) node.crash();
    ++crashes_;
    telemetry_note_fault("gateway_crash");
    record(scenario_.loop().now(),
           "gateway crash: #" + std::to_string(gateway_index));
  });
  scenario_.loop().at(at + downtime, [this, gateway_index] {
    auto& node = scenario_.node_for_gateway(gateway_index);
    if (node.crashed() && node.restart()) {
      const auto& stats = node.last_recovery();
      record(scenario_.loop().now(),
             "daemon recovered: #" + std::to_string(gateway_index) +
                 " replayed=" + std::to_string(stats.replayed_blocks) +
                 " truncated=" + std::to_string(stats.truncated_bytes) +
                 "B tip=" + std::to_string(stats.tip_height));
    }
    scenario_.gateway_by_index(gateway_index).restart();
    record(scenario_.loop().now(),
           "gateway restart: #" + std::to_string(gateway_index));
  });
}

void FaultPlan::torn_write_crash(std::size_t gateway_index, util::SimTime at,
                                 util::SimTime downtime,
                                 std::uint64_t tear_bytes) {
  scenario_.loop().at(at, [this, gateway_index, tear_bytes] {
    scenario_.gateway_by_index(gateway_index).crash();
    auto& node = scenario_.node_for_gateway(gateway_index);
    std::uint64_t torn = 0;
    if (node.persistent()) {
      if (!node.crashed()) node.crash();
      torn = node.tear_store_tail(tear_bytes);
    }
    ++crashes_;
    telemetry_note_fault("torn_write");
    record(scenario_.loop().now(),
           "torn-write crash: #" + std::to_string(gateway_index) +
               " sheared=" + std::to_string(torn) + "B");
  });
  scenario_.loop().at(at + downtime, [this, gateway_index] {
    auto& node = scenario_.node_for_gateway(gateway_index);
    if (node.crashed() && node.restart()) {
      const auto& stats = node.last_recovery();
      record(scenario_.loop().now(),
             "daemon recovered after torn write: #" +
                 std::to_string(gateway_index) +
                 " replayed=" + std::to_string(stats.replayed_blocks) +
                 " truncated=" + std::to_string(stats.truncated_bytes) + "B");
    }
    scenario_.gateway_by_index(gateway_index).restart();
    record(scenario_.loop().now(),
           "gateway restart: #" + std::to_string(gateway_index));
  });
}

void FaultPlan::crash_miner(util::SimTime at, util::SimTime downtime) {
  scenario_.loop().at(at, [this] {
    scenario_.set_mining_paused(true);
    auto& node = scenario_.master_node();
    if (node.persistent() && !node.crashed()) node.crash();
    ++crashes_;
    telemetry_note_fault("miner_crash");
    record(scenario_.loop().now(), "miner crash");
  });
  scenario_.loop().at(at + downtime, [this] {
    auto& node = scenario_.master_node();
    if (node.crashed() && node.restart()) {
      const auto& stats = node.last_recovery();
      record(scenario_.loop().now(),
             "miner recovered: replayed=" +
                 std::to_string(stats.replayed_blocks) +
                 " tip=" + std::to_string(stats.tip_height));
    }
    scenario_.set_mining_paused(false);
    record(scenario_.loop().now(), "miner restarted");
  });
}

void FaultPlan::stall_miner(util::SimTime at, util::SimTime duration) {
  scenario_.loop().at(at, [this] {
    scenario_.set_mining_paused(true);
    ++stalls_;
    telemetry_note_fault("miner_stall");
    record(scenario_.loop().now(), "miner stalled");
  });
  scenario_.loop().at(at + duration, [this] {
    scenario_.set_mining_paused(false);
    record(scenario_.loop().now(), "miner resumed");
  });
}

namespace {
/// Expected-count -> integer draw: floor(lambda) events plus one more with
/// probability frac(lambda).
int sample_count(util::Rng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  const double whole = std::floor(lambda);
  int n = static_cast<int>(whole);
  if (rng.chance(lambda - whole)) ++n;
  return n;
}
}  // namespace

void FaultPlan::unleash(const ChaosProfile& profile, util::SimTime horizon) {
  const util::SimTime now = scenario_.loop().now();
  const auto sample_at = [&] {
    return now + static_cast<util::SimTime>(
                     rng_.below(static_cast<std::uint64_t>(
                         std::max<util::SimTime>(horizon, 1))));
  };

  if (profile.burst.enabled()) {
    scenario_.radio().set_burst_model(profile.burst);
    ++degradations_;
    telemetry_note_fault("lora_degradation");
    record(now, "lora burst-loss model installed");
  }

  for (int a = 0; a < scenario_.actor_count(); ++a) {
    const int n = sample_count(rng_, profile.partitions_per_actor);
    for (int i = 0; i < n; ++i)
      partition_actor(a, sample_at(), profile.partition_duration);
  }
  for (int i = 0; i < sample_count(rng_, profile.master_partitions); ++i)
    partition_master(sample_at(), profile.partition_duration);

  const std::size_t gateways = scenario_.gateway_count();
  if (gateways > 0) {
    for (int i = 0; i < sample_count(rng_, profile.gateway_crashes); ++i) {
      crash_gateway(rng_.below(gateways), sample_at(),
                    profile.crash_downtime);
    }
    for (int i = 0; i < sample_count(rng_, profile.torn_writes); ++i) {
      // Shear 1..64 bytes — enough to land anywhere inside the tail
      // record's header or payload.
      torn_write_crash(rng_.below(gateways), sample_at(),
                       profile.crash_downtime, 1 + rng_.below(64));
    }
  }

  for (int i = 0; i < sample_count(rng_, profile.miner_crashes); ++i)
    crash_miner(sample_at(), profile.crash_downtime);

  for (int i = 0; i < sample_count(rng_, profile.miner_stalls); ++i)
    stall_miner(sample_at(), profile.stall_duration);
}

}  // namespace bcwan::sim

// Safety invariants of the BcWAN federation, checkable at any point of a
// (chaotic) run. Fault injection is only trustworthy if we can tell
// "degraded but correct" from "corrupted": these checks encode what must
// hold no matter which faults fired.
//
//   * funds conservation — every coin in any node's UTXO set traces back to
//     a coinbase; total value equals height * block_reward exactly (the
//     miner claims fees, OP_RETURN outputs carry zero value);
//   * at-most-one settlement per exchange — no ephemeral key is ever paid
//     for twice via distinct redeemed offers (the double-pay a crashing
//     gateway could otherwise cause), and no single offer output is both
//     redeemed and reclaimed (guaranteed by UTXO validation, re-checked
//     here against the stored blocks);
//   * convergence — after faults heal, every actor's chain tip is (close
//     to) the master's;
//   * quiescence — once traffic has drained, no agent leaks in-flight
//     exchange state (pending delivers, tracked redeems, busy sensors).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace bcwan::sim {

struct InvariantReport {
  std::vector<std::string> violations;
  bool ok() const noexcept { return violations.empty(); }
  /// All violations joined for one-line test diagnostics.
  std::string to_string() const;
};

/// Chain-level invariants on a single node's view of the world.
InvariantReport check_chain_invariants(const chain::Blockchain& chain);

/// Economic fair-exchange outcome over one chain's history (adversary
/// runs). For every Listing-1 offer on the active chain, exactly one of:
///   * redeemed — spent with an eSk that pairs with the offer's ePk, and
///     the spend pays the gateway (paid ⟺ revealed);
///   * reclaimed — spent via the CLTV branch at or after timeout_height,
///     paying the buyer back;
///   * open — still unspent (exchange in flight at snapshot time).
/// Violations: paid-without-reveal, revealed-without-pay, reclaim before
/// the timeout, or a reclaim not returning funds to the buyer.
struct SettlementTally {
  std::uint64_t offers = 0;
  std::uint64_t redeemed = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t open = 0;
};
SettlementTally check_settlement_invariants(const chain::Blockchain& chain,
                                            InvariantReport& report);

/// Federation-wide sweep: chain invariants on every node, tip convergence
/// against the master, and (optionally) the no-leaked-state quiescence
/// check. Only pass `expect_quiescent` after the loop has run long enough
/// for retries and housekeeping to drain.
InvariantReport check_federation_invariants(Scenario& scenario,
                                            bool expect_quiescent);

}  // namespace bcwan::sim

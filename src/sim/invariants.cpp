#include "sim/invariants.hpp"

#include <map>
#include <unordered_map>

#include "crypto/rsa.hpp"
#include "script/templates.hpp"
#include "util/bytes.hpp"

namespace bcwan::sim {

std::string InvariantReport::to_string() const {
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) out += "; ";
    out += v;
  }
  return out.empty() ? "ok" : out;
}

InvariantReport check_chain_invariants(const chain::Blockchain& chain) {
  InvariantReport report;

  // Funds conservation. Each block mints exactly block_reward (the coinbase
  // claims the fees back), genesis and OP_RETURN outputs carry zero value,
  // so the UTXO total must equal height * block_reward to the satoshi.
  const chain::Amount expected =
      static_cast<chain::Amount>(chain.height()) *
      chain.params().block_reward;
  const chain::Amount actual = chain.utxo().total_value();
  if (actual != expected) {
    report.violations.push_back(
        "funds not conserved: utxo total " + std::to_string(actual) +
        " != height*reward " + std::to_string(expected));
  }

  // Settlement uniqueness. Walk the active chain once, collecting every
  // Listing-1 offer output and every spend of one.
  struct OfferInfo {
    std::string ephemeral_hex;
    int spends = 0;
    bool redeemed = false;
  };
  std::map<std::pair<std::string, std::uint32_t>, OfferInfo> offers;
  const auto offer_key = [](const chain::OutPoint& op) {
    return std::make_pair(util::to_hex(util::ByteView(op.txid.data(),
                                                      op.txid.size())),
                          op.index);
  };
  for (int h = 0; h <= chain.height(); ++h) {
    const auto block = chain.block_at(h);
    if (!block) continue;
    for (const chain::Transaction& tx : block->txs) {
      const chain::Hash256 txid = tx.txid();
      for (std::uint32_t v = 0; v < tx.vout.size(); ++v) {
        const auto classified = script::classify(tx.vout[v].script_pubkey);
        if (classified.type != script::ScriptType::kKeyRelease) continue;
        if (!classified.ephemeral_pub) continue;
        OfferInfo info;
        info.ephemeral_hex =
            util::to_hex(classified.ephemeral_pub->serialize());
        offers[offer_key(chain::OutPoint{txid, v})] = std::move(info);
      }
      for (const chain::TxIn& in : tx.vin) {
        const auto it = offers.find(offer_key(in.prevout));
        if (it == offers.end()) continue;
        ++it->second.spends;
        if (script::extract_revealed_key(in.script_sig))
          it->second.redeemed = true;
      }
    }
  }
  std::unordered_map<std::string, int> redeems_per_key;
  for (const auto& [key, info] : offers) {
    if (info.spends > 1) {
      report.violations.push_back("offer " + key.first + ":" +
                                  std::to_string(key.second) +
                                  " spent more than once in active chain");
    }
    if (info.redeemed) ++redeems_per_key[info.ephemeral_hex];
  }
  for (const auto& [ephemeral, count] : redeems_per_key) {
    if (count > 1) {
      report.violations.push_back(
          "ephemeral key " + ephemeral.substr(0, 16) + "... settled " +
          std::to_string(count) + " times (double pay)");
    }
  }
  return report;
}

SettlementTally check_settlement_invariants(const chain::Blockchain& chain,
                                            InvariantReport& report) {
  SettlementTally tally;
  struct Offer {
    script::ClassifiedScript meta;
    std::string label;
    bool spent = false;
  };
  std::map<std::pair<std::string, std::uint32_t>, Offer> offers;
  const auto offer_key = [](const chain::OutPoint& op) {
    return std::make_pair(
        util::to_hex(util::ByteView(op.txid.data(), op.txid.size())), op.index);
  };
  const auto pays_hash = [](const chain::Transaction& tx,
                            const script::PubKeyHash& pkh) {
    for (const chain::TxOut& out : tx.vout) {
      const auto c = script::classify(out.script_pubkey);
      if (c.type == script::ScriptType::kP2pkh && c.pubkey_hash == pkh)
        return true;
    }
    return false;
  };

  for (int h = 0; h <= chain.height(); ++h) {
    const auto block = chain.block_at(h);
    if (!block) continue;
    for (const chain::Transaction& tx : block->txs) {
      const chain::Hash256 txid = tx.txid();
      for (std::uint32_t v = 0; v < tx.vout.size(); ++v) {
        const auto classified = script::classify(tx.vout[v].script_pubkey);
        if (classified.type != script::ScriptType::kKeyRelease) continue;
        if (!classified.ephemeral_pub) continue;
        Offer offer;
        offer.meta = classified;
        const auto key = offer_key(chain::OutPoint{txid, v});
        offer.label = key.first.substr(0, 16) + ":" + std::to_string(v);
        offers[key] = std::move(offer);
        ++tally.offers;
      }
      for (const chain::TxIn& in : tx.vin) {
        const auto it = offers.find(offer_key(in.prevout));
        if (it == offers.end()) continue;
        Offer& offer = it->second;
        if (offer.spent) continue;  // double-spend flagged by uniqueness check
        offer.spent = true;
        const auto revealed = script::extract_revealed_key(in.script_sig);
        if (revealed) {
          ++tally.redeemed;
          // Paid-without-reveal: a redeem whose eSk does not pair with the
          // offer's ePk took the money without releasing the real key.
          // OP_CHECKRSA512PAIR makes this unconfirmable; seeing one on the
          // active chain means consensus validation is broken.
          if (!crypto::rsa_pair_matches(*offer.meta.ephemeral_pub,
                                        *revealed)) {
            report.violations.push_back("offer " + offer.label +
                                        " paid without matching reveal "
                                        "(garbled eSk confirmed)");
          }
          if (!pays_hash(tx, offer.meta.pubkey_hash)) {
            report.violations.push_back(
                "offer " + offer.label +
                " redeem does not pay the revealing gateway");
          }
        } else {
          ++tally.reclaimed;
          if (static_cast<std::int64_t>(h) < offer.meta.timeout_height) {
            report.violations.push_back(
                "offer " + offer.label + " reclaimed at height " +
                std::to_string(h) + " before timeout " +
                std::to_string(offer.meta.timeout_height));
          }
          if (!pays_hash(tx, offer.meta.buyer_pubkey_hash)) {
            report.violations.push_back(
                "offer " + offer.label +
                " reclaim does not return funds to the buyer");
          }
        }
      }
    }
  }
  tally.open = tally.offers - tally.redeemed - tally.reclaimed;
  return tally;
}

InvariantReport check_federation_invariants(Scenario& scenario,
                                            bool expect_quiescent) {
  InvariantReport report;
  const auto absorb = [&](const InvariantReport& sub,
                          const std::string& where) {
    for (const std::string& v : sub.violations)
      report.violations.push_back(where + ": " + v);
  };

  absorb(check_chain_invariants(scenario.master_node().chain()), "master");
  {
    // Economic fair-exchange outcomes on the canonical (master) history.
    InvariantReport settlement;
    (void)check_settlement_invariants(scenario.master_node().chain(),
                                      settlement);
    absorb(settlement, "master settlement");
  }
  const int master_height = scenario.master_node().chain().height();
  for (int a = 0; a < scenario.actor_count(); ++a) {
    const std::string where = "actor" + std::to_string(a);
    const chain::Blockchain& chain = scenario.actor_node(a).chain();
    absorb(check_chain_invariants(chain), where);
    // Convergence: a healed actor must be within gossip distance of the
    // master and the master must at least know its tip block.
    if (chain.height() < master_height - 2) {
      report.violations.push_back(
          where + ": chain lagging (" + std::to_string(chain.height()) +
          " vs master " + std::to_string(master_height) + ")");
    } else if (!scenario.master_node().chain().have_block(chain.tip_hash())) {
      report.violations.push_back(where +
                                  ": tip unknown to master (stuck fork)");
    }
  }

  if (expect_quiescent) {
    for (std::size_t g = 0; g < scenario.gateway_count(); ++g) {
      core::GatewayAgent& gw = scenario.gateway_by_index(g);
      const std::string where = "gateway" + std::to_string(g);
      if (gw.pending_deliver_count() != 0) {
        report.violations.push_back(
            where + ": " + std::to_string(gw.pending_deliver_count()) +
            " unacked DELIVERs leaked");
      }
      if (gw.pending_redeem_count() != 0) {
        report.violations.push_back(
            where + ": " + std::to_string(gw.pending_redeem_count()) +
            " confirmation-gated redeems leaked");
      }
      if (gw.tracked_redeem_count() != 0) {
        report.violations.push_back(
            where + ": " + std::to_string(gw.tracked_redeem_count()) +
            " submitted redeems never buried");
      }
      if (gw.issued_key_count() != 0) {
        report.violations.push_back(
            where + ": " + std::to_string(gw.issued_key_count()) +
            " issued keys not consumed or expired");
      }
      if (gw.awaiting_offer_count() != 0) {
        report.violations.push_back(
            where + ": " + std::to_string(gw.awaiting_offer_count()) +
            " awaited offers not settled or expired");
      }
    }
    for (int a = 0; a < scenario.actor_count(); ++a) {
      core::RecipientAgent& recipient = scenario.recipient(a);
      if (recipient.pending_exchange_count() != 0) {
        report.violations.push_back(
            "recipient" + std::to_string(a) + ": " +
            std::to_string(recipient.pending_exchange_count()) +
            " pending exchanges never settled or reclaimed");
      }
    }
    for (int a = 0; a < scenario.actor_count(); ++a) {
      for (int s = 0; s < scenario.config().sensors_per_actor; ++s) {
        core::SensorNode& sensor = scenario.sensor(a, s);
        if (sensor.busy()) {
          report.violations.push_back(
              "sensor device " + std::to_string(sensor.device_id()) +
              " still mid-exchange");
        }
      }
    }
  }
  return report;
}

}  // namespace bcwan::sim

// City-scale BcWAN engine: compact state machines over coded events.
//
// The paper evaluates 5 gateways x 150 sensors. This engine asks what the
// same fair-exchange pipeline looks like at *city* scale — 10k gateways and
// 100k sensors — which the full Scenario cannot reach: its agents carry real
// RSA-512 blobs, std::function callbacks and per-exchange maps, so both the
// crypto and the allocator dominate long before a million exchanges.
//
// Design (DESIGN.md §14):
//   * Agents are rows in indexed arrays, not objects. An exchange's identity
//     is the (sensor, nonce) pair carried in the coded event's payload
//     words; per-sensor in-flight state is three flat arrays (start time,
//     ciphertext block, envelope tag). Nothing allocates per exchange.
//   * The protocol is a chain of coded events, one per phase:
//     ReportDue -> EpkReq -> EpkGot -> DataArrive -> Deliver -> OfferSeen
//     -> RevealSeen. Radio airtime, WAN latency, RSA keygen and on-chain
//     settlement are virtual-time delays; keygen and settlement are
//     *modeled* service times (exponential, matching the paper's measured
//     scales) while the data path runs real crypto — AES-256 block
//     encryption of the reading, a SHA-256 envelope tag checked at
//     delivery, and an AES decrypt + plaintext comparison at completion.
//   * Every random draw comes from util::Rng::substream(seed, stream,
//     nonce) — a stateless derivation from the exchange's identity, so
//     samples do not depend on global draw order and the simulation is
//     bit-identical across backends and worker counts.
//   * Strand ownership: a sensor shares its gateway's strand (the LoRa hop
//     is strand-local); recipients live on a disjoint strand block. Every
//     cross-strand hop rides a delay >= the lookahead window (WAN floor,
//     settlement), which is what lets the sharded EventLoop run whole
//     buckets of exchanges concurrently.
//   * Results stream: latency is accumulated in integer microseconds with
//     atomic counters (exact, associative, thread-count independent), the
//     trace digest is a commutative (wrapping-add) hash over completed
//     exchanges, and telemetry histograms/counters take the place of
//     unbounded record vectors.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/sha256.hpp"
#include "p2p/event_loop.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bcwan::sim {

struct CityConfig {
  std::uint32_t gateways = 10000;
  std::uint32_t sensors = 100000;
  std::uint32_t recipients = 1000;
  std::uint64_t seed = 1;

  /// Conservative lookahead (= calendar bucket width). Every modeled delay
  /// below must stay >= this.
  util::SimTime lookahead = 5 * util::kMillisecond;

  /// Mean inter-report interval per sensor (exponential, clamped >= 1 s).
  util::SimTime report_interval_mean = 30 * util::kSecond;

  /// LoRa SF7 airtime for the paper's 132 B exchange frames.
  double uplink_airtime_ms = 102.7;
  double downlink_airtime_ms = 102.7;

  /// Modeled RSA-512 ephemeral keygen on gateway-class hardware
  /// (exponential mean).
  double keygen_mean_ms = 60.0;

  /// WAN one-way latency: lognormal(median, sigma) clamped to the floor.
  /// The floor must stay >= lookahead (cross-strand hops ride the WAN).
  double wan_median_ms = 45.0;
  double wan_sigma = 0.35;
  double wan_floor_ms = 6.0;

  /// Mean time for a posted transaction to settle (exponential — the
  /// memoryless wait for the next Poisson block).
  util::SimTime block_interval = 15 * util::kSecond;

  /// Retain a full per-exchange trace (sensor, nonce, completion time,
  /// latency) for equivalence tests. Unbounded — small runs only.
  bool keep_trace = false;
};

/// One completed exchange, for keep_trace runs.
struct CityTraceRecord {
  std::uint32_t sensor = 0;
  std::uint64_t nonce = 0;
  util::SimTime completed_at = 0;
  util::SimTime latency = 0;

  friend bool operator==(const CityTraceRecord&,
                         const CityTraceRecord&) = default;
};

class CityEngine {
 public:
  /// Backend/threads from BCWAN_SIM_BACKEND / BCWAN_SIM_THREADS.
  explicit CityEngine(CityConfig config);
  CityEngine(CityConfig config, p2p::EventLoop::Backend backend,
             unsigned threads);

  /// Seed every sensor's first report (staggered across one mean interval)
  /// and run the federation for `duration` of virtual time. Running for a
  /// fixed virtual duration — rather than to an exchange count — keeps the
  /// executed event set identical across backends and thread counts.
  void run_for(util::SimTime duration);

  std::uint64_t exchanges_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Envelope-tag or decrypt mismatches (must be zero).
  std::uint64_t verify_failures() const noexcept {
    return verify_failures_.load(std::memory_order_relaxed);
  }
  /// Commutative digest over all completed exchanges: equal digests across
  /// two runs mean the same exchanges finished at the same virtual times
  /// with the same latencies.
  std::uint64_t trace_digest() const noexcept {
    return digest_.load(std::memory_order_relaxed);
  }

  // Exact integer latency aggregates (microseconds of virtual time).
  std::uint64_t latency_count() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t latency_sum_us() const noexcept {
    return latency_sum_us_.load(std::memory_order_relaxed);
  }
  std::uint64_t latency_min_us() const noexcept {
    return latency_min_us_.load(std::memory_order_relaxed);
  }
  std::uint64_t latency_max_us() const noexcept {
    return latency_max_us_.load(std::memory_order_relaxed);
  }
  double latency_mean_s() const noexcept;

  /// Sorted copy of the retained trace (keep_trace runs only): deterministic
  /// ordering for cross-backend comparison.
  std::vector<CityTraceRecord> sorted_trace() const;

  p2p::EventLoop& loop() noexcept { return loop_; }
  const CityConfig& config() const noexcept { return config_; }

 private:
  // Substream kinds (the `stream` word of Rng::substream).
  enum Stream : std::uint64_t {
    kStreamInterval = 1,
    kStreamKeygen = 2,
    kStreamWanDeliver = 3,
    kStreamWanOffer = 4,
    kStreamWanReveal = 5,
    kStreamSettleOffer = 6,
    kStreamSettleReveal = 7,
    kStreamStagger = 8,
  };

  static constexpr std::uint32_t kStrandsPerClass = 128;

  void register_handlers();
  p2p::StrandId sensor_strand(std::uint32_t sensor) const noexcept;
  p2p::StrandId recipient_strand(std::uint32_t sensor) const noexcept;
  std::uint32_t gateway_of(std::uint32_t sensor) const noexcept {
    return sensor % config_.gateways;
  }

  util::SimTime sample_exp(Stream stream, std::uint32_t entity,
                           std::uint64_t nonce, double mean_ms) const;
  util::SimTime sample_wan(Stream stream, std::uint32_t sensor,
                           std::uint64_t nonce) const;
  crypto::AesKey256 sensor_key(std::uint32_t sensor) const noexcept;
  crypto::AesBlock reading_for(std::uint32_t sensor,
                               std::uint64_t nonce) const noexcept;
  crypto::Digest256 envelope_tag(std::uint32_t sensor, std::uint64_t nonce,
                                 const crypto::AesBlock& cipher) const;

  // Protocol phase handlers (coded events; a = sensor, b = nonce).
  void on_report_due(std::uint64_t sensor, std::uint64_t nonce);
  void on_epk_req(std::uint64_t sensor, std::uint64_t nonce);
  void on_epk_got(std::uint64_t sensor, std::uint64_t nonce);
  void on_data_arrive(std::uint64_t sensor, std::uint64_t nonce);
  void on_deliver(std::uint64_t sensor, std::uint64_t nonce);
  void on_offer_seen(std::uint64_t sensor, std::uint64_t nonce);
  void on_reveal_seen(std::uint64_t sensor, std::uint64_t nonce);

  CityConfig config_;
  p2p::EventLoop loop_;

  std::uint32_t code_report_due_ = 0;
  std::uint32_t code_epk_req_ = 0;
  std::uint32_t code_epk_got_ = 0;
  std::uint32_t code_data_arrive_ = 0;
  std::uint32_t code_deliver_ = 0;
  std::uint32_t code_offer_seen_ = 0;
  std::uint32_t code_reveal_seen_ = 0;

  // Per-sensor in-flight exchange state. A sensor runs one exchange at a
  // time and its phases are ordered across lookahead windows, so each row
  // is only ever touched by one worker per window (no locks needed).
  std::vector<util::SimTime> start_us_;
  std::vector<crypto::AesBlock> cipher_;
  std::vector<crypto::Digest256> tag_;

  // Streamed results: exact, commutative, thread-count independent.
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> verify_failures_{0};
  std::atomic<std::uint64_t> digest_{0};
  std::atomic<std::uint64_t> latency_sum_us_{0};
  std::atomic<std::uint64_t> latency_min_us_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> latency_max_us_{0};

  mutable std::mutex trace_mutex_;
  std::vector<CityTraceRecord> trace_;
};

}  // namespace bcwan::sim

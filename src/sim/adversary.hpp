// Byzantine adversary layer.
//
// Where sim/faults injects *benign* failures (hosts drop, links fade,
// daemons die), an AdversaryPlan injects *actors that want to cheat* — the
// "malicious or faulty behaviour" the paper's §6 defers. Every attack maps
// to a concrete strategy against the BcWAN protocol and to the invariant
// that must defeat it (sim/invariants::check_settlement_invariants plus the
// per-agent counters):
//
//   * cheating gateways — take the recipient's offer and withhold eSk
//     (forcing the OP_CHECKLOCKTIMEVERIFY reclaim branch of Listing 1),
//     reveal a garbled key (must die on OP_CHECKRSA512PAIR), or reveal and
//     then double-claim the same offer output (first-seen mempools refuse);
//   * adversarial miners — censor reveal transactions out of blocks and
//     fee-snipe reclaims at the timeout boundary (withhold, then dump the
//     real redeems the moment the reclaim appears);
//   * Sybil swarms — flood the master-gateway election with free
//     identities (run_sybil_election_trial quantifies the unweighted
//     election's k/(n+k) exposure against the weighted variant's bound);
//   * LoRa-hop attacks — replay sniffed DATA frames, open targeted jamming
//     windows, and flip bits on the 128 B payload (the RSA-512 envelope
//     signature must catch every flip before any money moves).
//
// Composes with FaultPlan/ChaosProfile: both schedule on the same event
// loop, so chaos and adversaries can run in the same horizon. Deterministic
// methods take absolute virtual times (regression tests); unleash() samples
// an AdversaryProfile over a horizon (bench_adversarial sweeps).
//
// Lifetime: handlers installed on the radio and miner capture this plan's
// RNG and counters — the AdversaryPlan must outlive the scenario run.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bcwan/gateway_agent.hpp"
#include "sim/scenario.hpp"

namespace bcwan::sim {

/// Randomized attack intensity over one horizon (see AdversaryPlan::unleash).
/// Gateway counts are expected numbers of gateways flipped byzantine;
/// window counts are expected attack windows over the horizon.
struct AdversaryProfile {
  double withholding_gateways = 0.0;
  double garbling_gateways = 0.0;
  double double_claim_gateways = 0.0;
  /// Reveal-censorship windows on the master miner.
  double censorship_windows = 0.0;
  util::SimTime censorship_duration = 2 * util::kMinute;
  /// Targeted jamming windows on the shared radio channel.
  double jam_windows = 0.0;
  util::SimTime jam_duration = 30 * util::kSecond;
  /// Per-frame probability of an in-flight bit-flip on DATA payloads
  /// (0 = mangler not installed).
  double bitflip_probability = 0.0;
  /// Duty-cycle griefers: attacker radios spraying spoofed key requests at
  /// randomly chosen master gateways to drain the downlink duty budget.
  int duty_griefers = 0;
  int grief_requests = 20;
  /// Per-frame probability of capturing a DATA frame for delayed replay
  /// (0 = tap not installed).
  double replay_probability = 0.0;
  util::SimTime replay_delay = 15 * util::kMinute;
};

class AdversaryPlan {
 public:
  AdversaryPlan(Scenario& scenario, std::uint64_t seed);

  // -- Deterministic attack scheduling (times are absolute virtual times). --

  /// Flip one gateway into a byzantine mode at `at` (kHonest restores it).
  void corrupt_gateway(std::size_t gateway_index, core::GatewayMisbehavior m,
                       util::SimTime at);
  /// Fee-snipe: at `at`, a withholding gateway dumps every redeem it has
  /// been sitting on — racing the recipient's reclaim near the timeout.
  void fee_snipe(std::size_t gateway_index, util::SimTime at);
  /// Censor every reveal-carrying transaction out of mined blocks for
  /// `duration` (the transactions stay in mempools: censorship delays
  /// settlement, it cannot steal).
  void censor_reveals(util::SimTime at, util::SimTime duration);
  /// Open a jamming window on the radio: every frame in flight during
  /// [at, at + duration) is lost.
  void jam_lora(util::SimTime at, util::SimTime duration);
  /// Install the bit-flip mangler: each uplink DATA frame is corrupted
  /// with `probability` (one random bit of Em or Sig — the RSA envelope
  /// signature must reject it downstream). Takes effect immediately.
  void flip_bits(double probability);
  /// Install the replay attacker: sniff delivered DATA frames with
  /// `probability` and re-transmit the exact bytes `delay` later from an
  /// attacker radio. The gateway's payload-fingerprint dedupe must drop
  /// every replay. Takes effect immediately.
  void replay_data_frames(double probability, util::SimTime delay);
  /// Duty-cycle griefer: an attacker radio attached to `actor`'s master
  /// gateway sprays `requests` spoofed key requests `spacing` apart
  /// starting at `at`, burning gateway keygen cycles and downlink duty
  /// budget on devices that will never pay.
  void add_duty_griefer(int actor, int requests, util::SimTime at,
                        util::SimTime spacing);

  // -- Randomized attack sweep. --

  /// Sample attack times uniformly over [now, now + horizon] at the
  /// profile's intensities and schedule them all. Withholding gateways
  /// also get a fee-snipe scheduled near the end of the horizon.
  void unleash(const AdversaryProfile& profile, util::SimTime horizon);

  // -- Telemetry. --

  std::uint64_t gateways_corrupted() const noexcept { return cheats_; }
  std::uint64_t fee_snipes() const noexcept { return snipes_; }
  std::uint64_t censorship_windows() const noexcept { return censorships_; }
  std::uint64_t jam_windows() const noexcept { return jams_; }
  std::uint64_t frames_replayed() const noexcept { return replays_; }
  std::uint64_t grief_requests_sent() const noexcept { return griefs_; }
  /// Chronological, human-readable record of every attack.
  const std::vector<std::string>& log() const noexcept { return log_; }

 private:
  void record(util::SimTime at, const std::string& what);
  /// Attacker transmitter in range of `gateway` (lazily registered; duty
  /// cycle 1.0 — attackers do not respect ETSI).
  lora::RadioDeviceId attacker_device_for(lora::RadioGatewayId gateway);

  Scenario& scenario_;
  util::Rng rng_;
  std::unordered_map<int, lora::RadioDeviceId> attacker_devices_;
  // Frames already replayed (or queued for replay): keeps the uplink tap
  // from re-capturing its own replayed delivery in an endless loop.
  std::unordered_set<std::string> replayed_;
  std::uint16_t next_spoofed_id_ = 0xFF00;
  std::uint64_t cheats_ = 0;
  std::uint64_t snipes_ = 0;
  std::uint64_t censorships_ = 0;
  std::uint64_t jams_ = 0;
  std::uint64_t replays_ = 0;
  std::uint64_t griefs_ = 0;
  std::vector<std::string> log_;
};

/// Pure Sybil-pressure experiment on the election itself (no scenario
/// needed): `honest` weight-1 identities vs `sybils` weight-0 identities
/// across `epochs` epochs. The unweighted election hands the swarm
/// ~sybils/(honest+sybils) of the wins; the weighted election hands it
/// exactly zero.
struct SybilElectionStats {
  int epochs = 0;
  int honest_wins = 0;
  int sybil_wins = 0;
  int weighted_sybil_wins = 0;
};
SybilElectionStats run_sybil_election_trial(int honest, int sybils,
                                            int epochs, std::uint64_t seed);

}  // namespace bcwan::sim

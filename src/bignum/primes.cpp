#include "bignum/primes.hpp"

#include <array>
#include <stdexcept>

namespace bcwan::bignum {

namespace {

// Primes below 1000 for trial-division pre-filtering.
constexpr std::array<std::uint32_t, 168> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433,
    439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613,
    617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701,
    709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809,
    811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887,
    907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};

bool divisible_by_small_prime(const BigUint& n) {
  for (std::uint32_t p : kSmallPrimes) {
    const BigUint bp(p);
    if (n == bp) return false;  // n *is* a small prime, not divisible-composite
    if ((n % bp).is_zero()) return true;
  }
  return false;
}

bool miller_rabin_round(const BigUint& n, const BigUint& n_minus_1,
                        const BigUint& d, std::size_t r, const BigUint& base) {
  BigUint x = BigUint::mod_exp(base, d, n);
  if (x.is_one() || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = (x * x) % n;
    if (x == n_minus_1) return true;
  }
  return false;
}

}  // namespace

bool is_probable_prime(const BigUint& n, util::Rng& rng, std::size_t rounds) {
  if (n < BigUint(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigUint bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  if (n.bit_length() <= 20) {
    // Trial division already covered all factors <= sqrt(2^20) < 1024.
    return true;
  }

  const BigUint n_minus_1 = n - BigUint(1);
  BigUint d = n_minus_1;
  std::size_t r = 0;
  while (d.is_even()) {
    d = d.shr(1);
    ++r;
  }

  const BigUint two(2);
  const BigUint span = n - BigUint(4);  // bases in [2, n-2]
  for (std::size_t round = 0; round < rounds; ++round) {
    const BigUint base = BigUint::random_below(rng, span) + two;
    if (!miller_rabin_round(n, n_minus_1, d, r, base)) return false;
  }
  return true;
}

BigUint generate_prime(util::Rng& rng, std::size_t bits) {
  if (bits < 8) throw std::invalid_argument("generate_prime: bits < 8");
  const std::size_t nbytes = (bits + 7) / 8;
  const std::size_t excess = nbytes * 8 - bits;
  for (;;) {
    util::Bytes raw = rng.bytes(nbytes);
    // Force exact bit length and the next bit down (so p*q has exactly
    // 2*bits bits, as RSA keygen requires), and force oddness.
    raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);
    if (excess == 7) {
      raw[1] |= 0x80;
    } else {
      raw[0] |= static_cast<std::uint8_t>(0x40 >> excess);
    }
    raw[nbytes - 1] |= 0x01;
    const BigUint candidate = BigUint::from_bytes_be(raw);
    if (divisible_by_small_prime(candidate)) continue;
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

BigUint generate_rsa_prime(util::Rng& rng, std::size_t bits,
                           const BigUint& public_exponent) {
  for (;;) {
    BigUint p = generate_prime(rng, bits);
    if (BigUint::gcd(p - BigUint(1), public_exponent).is_one()) return p;
  }
}

}  // namespace bcwan::bignum

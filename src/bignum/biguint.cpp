#include "bignum/biguint.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "bignum/montgomery.hpp"

namespace bcwan::bignum {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigUint::BigUint(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32 != 0) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigUint::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  const auto bytes = util::from_hex(padded);
  if (!bytes) throw std::invalid_argument("BigUint::from_hex: malformed hex");
  return from_bytes_be(*bytes);
}

BigUint BigUint::from_bytes_be(util::ByteView bytes) {
  BigUint out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // bytes[i] is the (size-1-i)-th least significant byte.
    const std::size_t pos = bytes.size() - 1 - i;
    out.limbs_[pos / 4] |= static_cast<std::uint32_t>(bytes[i])
                           << (8 * (pos % 4));
  }
  out.trim();
  return out;
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "0";
  const auto bytes = to_bytes_be();
  std::string hex = util::to_hex(bytes);
  const auto first = hex.find_first_not_of('0');
  return hex.substr(first == std::string::npos ? hex.size() - 1 : first);
}

util::Bytes BigUint::to_bytes_be(std::size_t min_width) const {
  const std::size_t bytes_needed = (bit_length() + 7) / 8;
  if (min_width != 0 && bytes_needed > min_width)
    throw std::domain_error("BigUint::to_bytes_be: value wider than min_width");
  const std::size_t width =
      std::max(min_width, std::max<std::size_t>(bytes_needed, 1));
  util::Bytes out(width, 0);
  for (std::size_t pos = 0; pos < bytes_needed; ++pos) {
    out[width - 1 - pos] = static_cast<std::uint8_t>(
        limbs_[pos / 4] >> (8 * (pos % 4)));
  }
  return out;
}

std::uint64_t BigUint::to_u64() const {
  if (limbs_.size() > 2) throw std::domain_error("BigUint::to_u64: overflow");
  std::uint64_t v = 0;
  if (limbs_.size() > 1) v = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

std::size_t BigUint::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  return 32 * (limbs_.size() - 1) +
         (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigUint::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

int BigUint::compare(const BigUint& a, const BigUint& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUint operator+(const BigUint& a, const BigUint& b) {
  BigUint out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigUint operator-(const BigUint& a, const BigUint& b) {
  if (BigUint::compare(a, b) < 0)
    throw std::domain_error("BigUint: subtraction underflow");
  BigUint out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigUint operator*(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return {};
  BigUint out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          ai * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + b.limbs_.size()] = static_cast<std::uint32_t>(carry);
  }
  out.trim();
  return out;
}

BigUint BigUint::shl(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigUint BigUint::shr(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return {};
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

std::pair<BigUint, BigUint> BigUint::divmod(const BigUint& a, const BigUint& b) {
  if (b.is_zero()) throw std::domain_error("BigUint: division by zero");
  if (compare(a, b) < 0) return {BigUint{}, a};

  // Fast path: single-limb divisor.
  if (b.limbs_.size() == 1) {
    const std::uint64_t d = b.limbs_[0];
    BigUint q;
    q.limbs_.assign(a.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {std::move(q), BigUint(rem)};
  }

  // Knuth Algorithm D (TAOCP vol. 2, 4.3.1), 32-bit limbs.
  const int shift = std::countl_zero(b.limbs_.back());
  const BigUint bn = b.shl(static_cast<std::size_t>(shift));
  const BigUint an = a.shl(static_cast<std::size_t>(shift));
  const std::size_t n = bn.limbs_.size();
  const std::size_t m = an.limbs_.size() - n;

  std::vector<std::uint32_t> un = an.limbs_;
  un.resize(m + n + 1, 0);
  const std::vector<std::uint32_t>& vn = bn.limbs_;

  BigUint q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t num =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = num / vn[n - 1];
    std::uint64_t rhat = num % vn[n - 1];

    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply and subtract: un[j..j+n] -= qhat * vn[0..n-1].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                             static_cast<std::int64_t>(p & 0xffffffffULL) -
                             borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = t < 0 ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);

    if (t < 0) {
      // qhat was one too large; add the divisor back.
      --q.limbs_[j];
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s = static_cast<std::uint64_t>(un[i + j]) +
                                vn[i] + add_carry;
        un[i + j] = static_cast<std::uint32_t>(s);
        add_carry = s >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + add_carry);
    }
  }

  BigUint r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r.shr(static_cast<std::size_t>(shift));
  q.trim();
  return {std::move(q), std::move(r)};
}

BigUint operator/(const BigUint& a, const BigUint& b) {
  return BigUint::divmod(a, b).first;
}

BigUint operator%(const BigUint& a, const BigUint& b) {
  return BigUint::divmod(a, b).second;
}

BigUint BigUint::mod_exp(const BigUint& base, const BigUint& exp,
                         const BigUint& m) {
  if (m.is_zero()) throw std::domain_error("BigUint: mod_exp modulus zero");
  if (const auto ctx = MontgomeryCtx::cached(m)) return ctx->mod_exp(base, exp);
  return mod_exp_basic(base, exp, m);
}

BigUint BigUint::mod_exp_basic(const BigUint& base, const BigUint& exp,
                               const BigUint& m) {
  if (m.is_zero()) throw std::domain_error("BigUint: mod_exp modulus zero");
  if (m.is_one()) return {};
  BigUint result(1);
  BigUint b = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = (result * b) % m;
    b = (b * b) % m;
  }
  return result;
}

BigUint BigUint::mod_exp_crt(const BigUint& base, const BigUint& dp,
                             const BigUint& dq, const BigUint& p,
                             const BigUint& q, const BigUint& qinv) {
  if (p.is_zero() || q.is_zero())
    throw std::domain_error("BigUint: mod_exp_crt prime zero");
  // Half-width exponentiations: each routes through MontgomeryCtx::cached
  // for its own (odd) prime, so repeated operations under the same key
  // reuse both precomputed contexts.
  const BigUint m1 = mod_exp(base % p, dp, p);
  const BigUint m2 = mod_exp(base % q, dq, q);
  // Garner recombination: h = qinv * (m1 - m2) mod p; result = m2 + h*q.
  // m2 is reduced mod p first because q may exceed p.
  const BigUint h = mod_mul(mod_sub(m1, m2 % p, p), qinv % p, p);
  return m2 + h * q;
}

BigUint BigUint::mod_mul(const BigUint& a, const BigUint& b, const BigUint& m) {
  // The two-CIOS Montgomery product beats multiply-then-divide once the
  // modulus is wide enough to make Knuth division (and its allocations) the
  // dominant cost; below that the basic path wins.
  if (!m.is_even() && m.bit_length() >= 128) {
    if (const auto ctx = MontgomeryCtx::cached(m)) return ctx->mod_mul(a, b);
  }
  return mod_mul_basic(a, b, m);
}

BigUint BigUint::mod_mul_basic(const BigUint& a, const BigUint& b,
                               const BigUint& m) {
  return (a * b) % m;
}

BigUint BigUint::mod_add(const BigUint& a, const BigUint& b, const BigUint& m) {
  BigUint s = a + b;
  if (compare(s, m) >= 0) s = s - m;
  return s;
}

BigUint BigUint::mod_sub(const BigUint& a, const BigUint& b, const BigUint& m) {
  if (compare(a, b) >= 0) return a - b;
  return a + m - b;
}

std::optional<BigUint> BigUint::mod_inv(const BigUint& a, const BigUint& m) {
  if (m.is_zero()) throw std::domain_error("BigUint: mod_inv modulus zero");
  // Extended Euclid with explicit sign tracking for the Bezout coefficient.
  struct Signed {
    bool neg = false;
    BigUint mag;
  };
  auto sub = [](const Signed& x, const Signed& y) {
    // x - y on signed magnitudes.
    Signed out;
    if (x.neg == y.neg) {
      if (compare(x.mag, y.mag) >= 0) {
        out.neg = x.neg;
        out.mag = x.mag - y.mag;
      } else {
        out.neg = !x.neg;
        out.mag = y.mag - x.mag;
      }
    } else {
      out.neg = x.neg;
      out.mag = x.mag + y.mag;
    }
    if (out.mag.is_zero()) out.neg = false;
    return out;
  };

  BigUint r0 = m;
  BigUint r1 = a % m;
  Signed t0{false, BigUint{}};
  Signed t1{false, BigUint(1)};
  while (!r1.is_zero()) {
    auto [q, r2] = divmod(r0, r1);
    r0 = std::move(r1);
    r1 = std::move(r2);
    Signed qt1{t1.neg, q * t1.mag};
    Signed t2 = sub(t0, qt1);
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (!r0.is_one()) return std::nullopt;  // not coprime
  BigUint inv = t0.mag % m;
  if (t0.neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUint BigUint::random_bits(util::Rng& rng, std::size_t bits) {
  if (bits == 0) return {};
  const std::size_t nbytes = (bits + 7) / 8;
  util::Bytes raw = rng.bytes(nbytes);
  const std::size_t excess = nbytes * 8 - bits;
  raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
  return from_bytes_be(raw);
}

BigUint BigUint::random_below(util::Rng& rng, const BigUint& bound) {
  if (bound.is_zero())
    throw std::domain_error("BigUint: random_below zero bound");
  const std::size_t bits = bound.bit_length();
  for (;;) {
    BigUint candidate = random_bits(rng, bits);
    if (compare(candidate, bound) < 0) return candidate;
  }
}

}  // namespace bcwan::bignum

// Arbitrary-precision unsigned integers.
//
// This is the numeric substrate for the from-scratch crypto stack: RSA-512
// (the paper's ephemeral-key scheme and OP_CHECKRSA512PAIR operator) and
// ECDSA over secp256k1 (transaction signatures). Limbs are 32-bit stored
// little-endian; products/divisions use 64-bit intermediates. Division is
// Knuth Algorithm D.
//
// Values are normalized: no trailing zero limbs; zero is the empty limb
// vector. All operations are value-semantic and throw std::domain_error on
// mathematically undefined inputs (division by zero, subtraction underflow).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bcwan::bignum {

class MontgomeryCtx;

class BigUint {
 public:
  /// Zero.
  BigUint() = default;
  /// From a machine word.
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor) — numeric literal ergonomics

  static BigUint from_hex(std::string_view hex);
  /// Big-endian byte import (network/crypto order). Leading zeros allowed.
  static BigUint from_bytes_be(util::ByteView bytes);

  std::string to_hex() const;
  /// Big-endian export, left-padded with zeros to at least `min_width` bytes.
  util::Bytes to_bytes_be(std::size_t min_width = 0) const;
  /// Throws std::domain_error if the value exceeds 64 bits.
  std::uint64_t to_u64() const;

  bool is_zero() const noexcept { return limbs_.empty(); }
  bool is_one() const noexcept { return limbs_.size() == 1 && limbs_[0] == 1; }
  bool is_even() const noexcept { return limbs_.empty() || (limbs_[0] & 1u) == 0; }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const noexcept;
  /// Bit i (LSB = 0); out-of-range bits read as 0.
  bool bit(std::size_t i) const noexcept;

  static int compare(const BigUint& a, const BigUint& b) noexcept;
  friend bool operator==(const BigUint& a, const BigUint& b) noexcept {
    return compare(a, b) == 0;
  }
  friend std::strong_ordering operator<=>(const BigUint& a,
                                          const BigUint& b) noexcept {
    const int c = compare(a, b);
    return c < 0 ? std::strong_ordering::less
           : c > 0 ? std::strong_ordering::greater
                   : std::strong_ordering::equal;
  }

  friend BigUint operator+(const BigUint& a, const BigUint& b);
  /// Throws std::domain_error if b > a (unsigned underflow).
  friend BigUint operator-(const BigUint& a, const BigUint& b);
  friend BigUint operator*(const BigUint& a, const BigUint& b);
  friend BigUint operator/(const BigUint& a, const BigUint& b);
  friend BigUint operator%(const BigUint& a, const BigUint& b);
  BigUint& operator+=(const BigUint& o) { return *this = *this + o; }
  BigUint& operator-=(const BigUint& o) { return *this = *this - o; }
  BigUint& operator*=(const BigUint& o) { return *this = *this * o; }

  BigUint shl(std::size_t bits) const;
  BigUint shr(std::size_t bits) const;
  friend BigUint operator<<(const BigUint& a, std::size_t b) { return a.shl(b); }
  friend BigUint operator>>(const BigUint& a, std::size_t b) { return a.shr(b); }

  /// Quotient and remainder in one pass. Throws std::domain_error on b == 0.
  static std::pair<BigUint, BigUint> divmod(const BigUint& a, const BigUint& b);

  /// (base ^ exp) mod m. Routed through the Montgomery fast path for odd
  /// multi-limb moduli (see bignum/montgomery.hpp); otherwise falls back to
  /// mod_exp_basic. Throws on m == 0.
  static BigUint mod_exp(const BigUint& base, const BigUint& exp,
                         const BigUint& m);
  /// Reference slow path: square-and-multiply over schoolbook division.
  /// Works for any modulus; differential tests pit the Montgomery path
  /// against this.
  static BigUint mod_exp_basic(const BigUint& base, const BigUint& exp,
                               const BigUint& m);
  /// RSA-CRT exponentiation: base^d mod (p*q) computed as two half-width
  /// exponentiations (dp = d mod p-1, dq = d mod q-1, each routed through
  /// the Montgomery fast path for its own prime) recombined with Garner's
  /// formula using qinv = q^-1 mod p. Roughly 4x cheaper than a full-width
  /// mod_exp because CIOS cost scales with limbs^2 * exponent bits. The
  /// caller owns correctness of (dp, dq, qinv) — RSA callers re-check the
  /// result against the public exponent so a miscomputation cannot escape
  /// (crypto/rsa.cpp); differential tests pit this against mod_exp.
  /// Throws std::domain_error on p or q zero.
  static BigUint mod_exp_crt(const BigUint& base, const BigUint& dp,
                             const BigUint& dq, const BigUint& p,
                             const BigUint& q, const BigUint& qinv);
  /// Modular inverse via extended Euclid; nullopt when gcd(a, m) != 1.
  static std::optional<BigUint> mod_inv(const BigUint& a, const BigUint& m);
  /// (a * b) mod m. Routed through Montgomery for odd moduli >= 128 bits.
  static BigUint mod_mul(const BigUint& a, const BigUint& b, const BigUint& m);
  /// Reference slow path: full product then Knuth division.
  static BigUint mod_mul_basic(const BigUint& a, const BigUint& b,
                               const BigUint& m);
  /// (a + b) mod m, assuming a, b < m.
  static BigUint mod_add(const BigUint& a, const BigUint& b, const BigUint& m);
  /// (a - b) mod m, assuming a, b < m.
  static BigUint mod_sub(const BigUint& a, const BigUint& b, const BigUint& m);
  static BigUint gcd(BigUint a, BigUint b);

  /// Uniform value with exactly `bits` random bits (top bit not forced).
  static BigUint random_bits(util::Rng& rng, std::size_t bits);
  /// Uniform in [0, bound). Throws on bound == 0.
  static BigUint random_below(util::Rng& rng, const BigUint& bound);

 private:
  friend class MontgomeryCtx;  // raw limb access for CIOS multiplication

  void trim() noexcept;
  std::vector<std::uint32_t> limbs_;  // little-endian, normalized
};

}  // namespace bcwan::bignum

// Montgomery-form modular arithmetic — the validation fast path.
//
// Every fair-exchange settlement funnels through RSA-512 `mod_exp` (the
// OP_CHECKRSA512PAIR probes and signature checks) and secp256k1 field
// multiplications, all under a handful of fixed odd moduli. A MontgomeryCtx
// precomputes, once per modulus, everything needed to replace each
// multiply-then-Knuth-divide step with a single CIOS (coarsely integrated
// operand scanning) interleaved multiply-reduce:
//
//   * n0' = -m[0]^-1 mod 2^32   (limb-wise Montgomery constant)
//   * R mod m and R^2 mod m     (domain conversion, R = 2^(32*limbs))
//
// `mod_exp` stays in the Montgomery domain throughout and uses a 4-bit
// window (16-entry table: 4 squarings + at most 1 multiply per window);
// `mod_mul` is two CIOS passes (a*R^2 -> aR, then aR*b -> ab mod m).
//
// Contexts are memoized in a small thread-local MRU cache keyed on the
// modulus, so repeated verifies under the same RSA key — or the fixed
// secp256k1 p/n — skip precomputation entirely, with no locking on the
// parallel script-check workers. The classic square-and-multiply /
// schoolbook-division code remains in BigUint as the reference slow path
// (`mod_exp_basic` / `mod_mul_basic`) and handles even moduli, for which
// Montgomery reduction is undefined.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bignum/biguint.hpp"

namespace bcwan::bignum {

class MontgomeryCtx {
 public:
  /// Throws std::domain_error unless `modulus` is odd and > 1.
  explicit MontgomeryCtx(const BigUint& modulus);

  const BigUint& modulus() const noexcept { return m_; }

  /// (a * b) mod m. Operands need not be reduced.
  BigUint mod_mul(const BigUint& a, const BigUint& b) const;

  /// (base ^ exp) mod m, 4-bit windowed, constant Montgomery domain.
  BigUint mod_exp(const BigUint& base, const BigUint& exp) const;

  /// Memoized context for `modulus` from a bounded thread-local MRU cache.
  /// nullptr when the fast path does not apply: modulus even, zero, one,
  /// single-limb, or Montgomery globally disabled (bench ablations).
  static std::shared_ptr<const MontgomeryCtx> cached(const BigUint& modulus);

 private:
  std::size_t limbs() const noexcept { return mod_limbs_.size(); }
  /// out = a * b * R^-1 mod m (CIOS). All pointers reference `limbs()`-sized
  /// arrays; `t` is scratch of limbs()+2. `out` may alias `a` or `b`.
  void mont_mul(const std::uint32_t* a, const std::uint32_t* b,
                std::uint32_t* out, std::uint32_t* t) const;
  /// Value -> limbs()-sized little-endian array (value must be < m).
  std::vector<std::uint32_t> to_padded(const BigUint& v) const;
  BigUint from_limbs(const std::uint32_t* v) const;

  BigUint m_;
  std::vector<std::uint32_t> mod_limbs_;  // m, little-endian
  std::vector<std::uint32_t> r1_;         // R mod m (1 in Montgomery form)
  std::vector<std::uint32_t> r2_;         // R^2 mod m (to-Montgomery factor)
  std::uint32_t n0inv_ = 0;               // -m[0]^-1 mod 2^32
};

/// Global kill switch for the fast path (default on). The bench ablation
/// flips it to isolate Montgomery's contribution; reads are relaxed atomics
/// so the hot path pays one load.
bool montgomery_enabled() noexcept;
void set_montgomery_enabled(bool enabled) noexcept;

}  // namespace bcwan::bignum

// Probabilistic primality testing and random prime generation.
//
// Used by crypto::rsa to generate the 256-bit prime factors of RSA-512
// moduli (and larger moduli for the key-size ablation). Miller-Rabin with
// random bases; candidates are pre-filtered by trial division against a
// small-prime table.
#pragma once

#include <cstddef>

#include "bignum/biguint.hpp"
#include "util/rng.hpp"

namespace bcwan::bignum {

/// Miller-Rabin with `rounds` random bases (error probability <= 4^-rounds).
/// Exact for inputs below 2^16 via trial division.
bool is_probable_prime(const BigUint& n, util::Rng& rng,
                       std::size_t rounds = 24);

/// Random prime with exactly `bits` bits (top two bits set so that products
/// of two such primes have exactly 2*bits bits, as RSA keygen requires).
/// Requires bits >= 8.
BigUint generate_prime(util::Rng& rng, std::size_t bits);

/// Random safe-ish RSA prime p with gcd(p-1, e) == 1.
BigUint generate_rsa_prime(util::Rng& rng, std::size_t bits,
                           const BigUint& public_exponent);

}  // namespace bcwan::bignum

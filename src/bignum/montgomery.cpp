#include "bignum/montgomery.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

namespace bcwan::bignum {

namespace {

std::atomic<bool> g_montgomery_enabled{true};

/// Inverse of an odd 32-bit value mod 2^32 by Newton iteration: each step
/// doubles the number of correct low bits; five steps from a 1-bit seed
/// cover all 32.
std::uint32_t inv32(std::uint32_t odd) {
  std::uint32_t x = odd;  // correct to 3 bits for odd inputs
  for (int i = 0; i < 4; ++i) x *= 2 - odd * x;
  return x;
}

constexpr std::size_t kCtxCacheCap = 64;

}  // namespace

bool montgomery_enabled() noexcept {
  return g_montgomery_enabled.load(std::memory_order_relaxed);
}

void set_montgomery_enabled(bool enabled) noexcept {
  g_montgomery_enabled.store(enabled, std::memory_order_relaxed);
}

MontgomeryCtx::MontgomeryCtx(const BigUint& modulus) : m_(modulus) {
  if (m_.is_zero() || m_.is_one() || m_.is_even())
    throw std::domain_error("MontgomeryCtx: modulus must be odd and > 1");
  mod_limbs_ = m_.limbs_;
  n0inv_ = ~inv32(mod_limbs_[0]) + 1;  // -m[0]^-1 mod 2^32
  const std::size_t n = mod_limbs_.size();
  r1_ = to_padded((BigUint(1) << (32 * n)) % m_);
  r2_ = to_padded((BigUint(1) << (64 * n)) % m_);
}

std::vector<std::uint32_t> MontgomeryCtx::to_padded(const BigUint& v) const {
  std::vector<std::uint32_t> out(mod_limbs_.size(), 0);
  for (std::size_t i = 0; i < v.limbs_.size(); ++i) out[i] = v.limbs_[i];
  return out;
}

BigUint MontgomeryCtx::from_limbs(const std::uint32_t* v) const {
  BigUint out;
  out.limbs_.assign(v, v + limbs());
  out.trim();
  return out;
}

void MontgomeryCtx::mont_mul(const std::uint32_t* a, const std::uint32_t* b,
                             std::uint32_t* out, std::uint32_t* t) const {
  // CIOS (Koç/Acar/Kaliski): interleave the a_i*b partial product with one
  // Montgomery reduction step per outer iteration; t holds n+2 limbs and
  // stays < 2m at the end, so one conditional subtract finishes.
  const std::size_t n = limbs();
  const std::uint32_t* m = mod_limbs_.data();
  for (std::size_t i = 0; i < n + 2; ++i) t[i] = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ai = a[i];
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[n] + carry;
    t[n] = static_cast<std::uint32_t>(cur);
    t[n + 1] = static_cast<std::uint32_t>(cur >> 32);

    const std::uint32_t mi = t[0] * n0inv_;
    cur = t[0] + static_cast<std::uint64_t>(mi) * m[0];
    carry = cur >> 32;  // low limb is zero by construction of mi
    for (std::size_t j = 1; j < n; ++j) {
      cur = t[j] + static_cast<std::uint64_t>(mi) * m[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = t[n] + carry;
    t[n - 1] = static_cast<std::uint32_t>(cur);
    t[n] = t[n + 1] + static_cast<std::uint32_t>(cur >> 32);
  }

  // t may be in [0, 2m): subtract m once if t >= m.
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (t[i] != m[i]) {
        ge = t[i] > m[i];
        break;
      }
    }
  }
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t diff =
          static_cast<std::int64_t>(t[i]) - m[i] - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(1) << 32;
        borrow = 1;
      } else {
        borrow = 0;
      }
      out[i] = static_cast<std::uint32_t>(diff);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = t[i];
  }
}

BigUint MontgomeryCtx::mod_mul(const BigUint& a, const BigUint& b) const {
  const std::vector<std::uint32_t> av =
      to_padded(BigUint::compare(a, m_) >= 0 ? a % m_ : a);
  const std::vector<std::uint32_t> bv =
      to_padded(BigUint::compare(b, m_) >= 0 ? b % m_ : b);
  const std::size_t n = limbs();
  std::vector<std::uint32_t> scratch(2 * n + 2);
  std::uint32_t* ar = scratch.data();      // a*R
  std::uint32_t* t = scratch.data() + n;   // CIOS scratch, n+2
  mont_mul(av.data(), r2_.data(), ar, t);  // aR = mont(a, R^2)
  std::vector<std::uint32_t> out(n);
  mont_mul(ar, bv.data(), out.data(), t);  // ab = mont(aR, b)
  return from_limbs(out.data());
}

BigUint MontgomeryCtx::mod_exp(const BigUint& base, const BigUint& exp) const {
  const std::size_t n = limbs();
  if (exp.is_zero()) return BigUint(1);  // m > 1, so 1 mod m == 1
  const std::vector<std::uint32_t> bv =
      to_padded(BigUint::compare(base, m_) >= 0 ? base % m_ : base);

  std::vector<std::uint32_t> t(n + 2);
  // 16-entry window table in the Montgomery domain: table[k] = base^k * R.
  std::vector<std::uint32_t> table(16 * n);
  std::uint32_t* tab = table.data();
  for (std::size_t i = 0; i < n; ++i) tab[i] = r1_[i];          // base^0
  mont_mul(bv.data(), r2_.data(), tab + n, t.data());           // base^1
  for (std::size_t k = 2; k < 16; ++k)
    mont_mul(tab + (k - 1) * n, tab + n, tab + k * n, t.data());

  std::vector<std::uint32_t> acc(r1_);  // 1 in Montgomery form
  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  bool started = false;
  for (std::size_t w = windows; w-- > 0;) {
    if (started) {
      for (int s = 0; s < 4; ++s)
        mont_mul(acc.data(), acc.data(), acc.data(), t.data());
    }
    std::uint32_t win = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      if (exp.bit(4 * w + b)) win |= 1u << b;
    }
    if (win != 0) {
      mont_mul(acc.data(), tab + win * n, acc.data(), t.data());
      started = true;
    }
  }
  // Leave the Montgomery domain: mont(acc, 1) = acc * R^-1.
  std::vector<std::uint32_t> one(n, 0);
  one[0] = 1;
  mont_mul(acc.data(), one.data(), acc.data(), t.data());
  return from_limbs(acc.data());
}

std::shared_ptr<const MontgomeryCtx> MontgomeryCtx::cached(
    const BigUint& modulus) {
  if (!montgomery_enabled()) return nullptr;
  // Single-limb moduli already hit BigUint's one-word division fast path;
  // even moduli have no Montgomery form.
  if (modulus.is_even() || modulus.bit_length() <= 32) return nullptr;

  // Thread-local MRU list: no locking under the parallel check queue, and
  // the hottest moduli (secp256k1 p/n, the federation's RSA keys) stay at
  // the front where the scan is one compare.
  thread_local std::vector<std::shared_ptr<const MontgomeryCtx>> cache;
  for (auto it = cache.begin(); it != cache.end(); ++it) {
    if ((*it)->modulus() == modulus) {
      std::shared_ptr<const MontgomeryCtx> hit = *it;
      if (it != cache.begin()) {
        cache.erase(it);
        cache.insert(cache.begin(), hit);
      }
      return hit;
    }
  }
  auto ctx = std::make_shared<const MontgomeryCtx>(modulus);
  cache.insert(cache.begin(), ctx);
  if (cache.size() > kCtxCacheCap) cache.pop_back();
  return ctx;
}

}  // namespace bcwan::bignum

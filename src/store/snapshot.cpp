#include "store/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "store/crc32c.hpp"
#include "util/serial.hpp"

namespace fs = std::filesystem;

namespace bcwan::store {
namespace {

constexpr std::size_t kSnapshotHeaderBytes = 8 + 4 + 8 + 4 + 4;

std::uint32_t snapshot_crc(std::uint64_t next_seq, util::ByteView payload) {
  util::Writer w;
  w.u64(next_seq);
  return crc32c_extend(crc32c(w.data()), payload);
}

std::string snapshot_name(std::uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.snap",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool parse_snapshot_name(const std::string& name, std::uint64_t& seq) {
  if (name.size() < 14 || name.rfind("snapshot-", 0) != 0 ||
      name.substr(name.size() - 5) != ".snap") {
    return false;
  }
  const std::string digits = name.substr(9, name.size() - 14);
  if (digits.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  seq = v;
  return true;
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

void set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

std::vector<SnapshotInfo> list_snapshots(const std::string& dir) {
  std::vector<SnapshotInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::uint64_t seq = 0;
    const std::string name = entry.path().filename().string();
    if (!parse_snapshot_name(name, seq)) continue;
    SnapshotInfo info;
    info.seq = seq;
    info.path = entry.path().string();
    info.bytes = static_cast<std::uint64_t>(entry.file_size(ec));
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotInfo& a, const SnapshotInfo& b) {
              return a.seq > b.seq;
            });
  return out;
}

bool write_snapshot_file(const std::string& dir, std::uint64_t next_seq,
                         util::ByteView state, SnapshotInfo* info,
                         std::string* error) {
  const fs::path final_path = fs::path(dir) / snapshot_name(next_seq);
  const fs::path tmp_path = final_path.string() + ".tmp";

  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    set_error(error, "cannot create snapshot tmp: " + tmp_path.string());
    return false;
  }
  util::Writer header;
  header.bytes(util::ByteView(
      reinterpret_cast<const std::uint8_t*>(kSnapshotMagic),
      sizeof(kSnapshotMagic)));
  header.u32(kSnapshotVersion);
  header.u64(next_seq);
  header.u32(static_cast<std::uint32_t>(state.size()));
  header.u32(snapshot_crc(next_seq, state));
  bool ok = std::fwrite(header.data().data(), 1, header.data().size(), f) ==
            header.data().size();
  ok = ok && (state.empty() ||
              std::fwrite(state.data(), 1, state.size(), f) == state.size());
  // Ordering contract: data must be on disk BEFORE the rename publishes the
  // file, and the rename must be on disk before the caller retires the log.
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    set_error(error, "cannot write snapshot: " + tmp_path.string());
    return false;
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec || !fsync_dir(dir)) {
    fs::remove(tmp_path, ec);
    set_error(error, "cannot publish snapshot: " + final_path.string());
    return false;
  }
  if (info != nullptr) {
    info->seq = next_seq;
    info->path = final_path.string();
    info->bytes = kSnapshotHeaderBytes + state.size();
  }
  return true;
}

std::optional<util::Bytes> load_snapshot_file(const std::string& path,
                                              std::uint64_t* next_seq) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < static_cast<long>(kSnapshotHeaderBytes)) {
    std::fclose(f);
    return std::nullopt;
  }
  util::Bytes data(static_cast<std::size_t>(size));
  const bool read_ok =
      std::fread(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  if (!read_ok) return std::nullopt;

  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0)
    return std::nullopt;
  try {
    util::Reader r(util::ByteView(data).subspan(sizeof(kSnapshotMagic)));
    if (r.u32() != kSnapshotVersion) return std::nullopt;
    const std::uint64_t seq = r.u64();
    const std::uint32_t len = r.u32();
    const std::uint32_t crc = r.u32();
    if (len != r.remaining()) return std::nullopt;
    util::Bytes payload = r.bytes(len);
    r.expect_done();
    if (snapshot_crc(seq, payload) != crc) return std::nullopt;
    if (next_seq != nullptr) *next_seq = seq;
    return payload;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

void prune_snapshots(const std::string& dir, std::size_t keep) {
  const std::vector<SnapshotInfo> all = list_snapshots(dir);
  std::error_code ec;
  for (std::size_t i = keep; i < all.size(); ++i) {
    fs::remove(all[i].path, ec);
  }
}

namespace {

constexpr std::size_t kDeltaHeaderBytes = 8 + 4 + 8 + 8 + 4 + 4;

std::uint32_t delta_crc(std::uint64_t parent_seq, std::uint64_t next_seq,
                        util::ByteView payload) {
  util::Writer w;
  w.u64(parent_seq);
  w.u64(next_seq);
  return crc32c_extend(crc32c(w.data()), payload);
}

std::string delta_name(std::uint64_t parent_seq, std::uint64_t seq) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "delta-%020llu-%020llu.snap",
                static_cast<unsigned long long>(parent_seq),
                static_cast<unsigned long long>(seq));
  return buf;
}

bool parse_delta_name(const std::string& name, std::uint64_t& parent_seq,
                      std::uint64_t& seq) {
  // delta-<20 digits>-<20 digits>.snap
  constexpr std::size_t kLen = 6 + 20 + 1 + 20 + 5;
  if (name.size() != kLen || name.rfind("delta-", 0) != 0 ||
      name[26] != '-' || name.substr(name.size() - 5) != ".snap") {
    return false;
  }
  const auto digits = [&name](std::size_t from, std::uint64_t& out) {
    std::uint64_t v = 0;
    for (std::size_t i = from; i < from + 20; ++i) {
      const char c = name[i];
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
  };
  return digits(6, parent_seq) && digits(27, seq);
}

}  // namespace

std::vector<DeltaFileInfo> list_delta_files(const std::string& dir) {
  std::vector<DeltaFileInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::uint64_t parent_seq = 0;
    std::uint64_t seq = 0;
    const std::string name = entry.path().filename().string();
    if (!parse_delta_name(name, parent_seq, seq)) continue;
    DeltaFileInfo info;
    info.parent_seq = parent_seq;
    info.seq = seq;
    info.path = entry.path().string();
    info.bytes = static_cast<std::uint64_t>(entry.file_size(ec));
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const DeltaFileInfo& a, const DeltaFileInfo& b) {
              return a.seq < b.seq;
            });
  return out;
}

bool write_delta_file(const std::string& dir, std::uint64_t parent_seq,
                      std::uint64_t next_seq, util::ByteView payload,
                      DeltaFileInfo* info, std::string* error) {
  const fs::path final_path = fs::path(dir) / delta_name(parent_seq, next_seq);
  const fs::path tmp_path = final_path.string() + ".tmp";

  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    set_error(error, "cannot create delta tmp: " + tmp_path.string());
    return false;
  }
  util::Writer header;
  header.bytes(util::ByteView(
      reinterpret_cast<const std::uint8_t*>(kDeltaMagic), sizeof(kDeltaMagic)));
  header.u32(kDeltaFileVersion);
  header.u64(parent_seq);
  header.u64(next_seq);
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(delta_crc(parent_seq, next_seq, payload));
  bool ok = std::fwrite(header.data().data(), 1, header.data().size(), f) ==
            header.data().size();
  ok = ok && (payload.empty() || std::fwrite(payload.data(), 1, payload.size(),
                                             f) == payload.size());
  // Same ordering contract as base snapshots: data durable before the
  // rename publishes it, rename durable before the log is retired.
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    set_error(error, "cannot write delta: " + tmp_path.string());
    return false;
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec || !fsync_dir(dir)) {
    fs::remove(tmp_path, ec);
    set_error(error, "cannot publish delta: " + final_path.string());
    return false;
  }
  if (info != nullptr) {
    info->parent_seq = parent_seq;
    info->seq = next_seq;
    info->path = final_path.string();
    info->bytes = kDeltaHeaderBytes + payload.size();
  }
  return true;
}

std::optional<util::Bytes> load_delta_file(const std::string& path,
                                           std::uint64_t* parent_seq,
                                           std::uint64_t* next_seq) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < static_cast<long>(kDeltaHeaderBytes)) {
    std::fclose(f);
    return std::nullopt;
  }
  util::Bytes data(static_cast<std::size_t>(size));
  const bool read_ok =
      std::fread(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  if (!read_ok) return std::nullopt;

  if (std::memcmp(data.data(), kDeltaMagic, sizeof(kDeltaMagic)) != 0)
    return std::nullopt;
  try {
    util::Reader r(util::ByteView(data).subspan(sizeof(kDeltaMagic)));
    if (r.u32() != kDeltaFileVersion) return std::nullopt;
    const std::uint64_t parent = r.u64();
    const std::uint64_t seq = r.u64();
    const std::uint32_t len = r.u32();
    const std::uint32_t crc = r.u32();
    if (len != r.remaining()) return std::nullopt;
    util::Bytes payload = r.bytes(len);
    r.expect_done();
    if (delta_crc(parent, seq, payload) != crc) return std::nullopt;
    if (parent_seq != nullptr) *parent_seq = parent;
    if (next_seq != nullptr) *next_seq = seq;
    return payload;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

void prune_delta_files(const std::string& dir, std::uint64_t below_seq) {
  std::error_code ec;
  for (const DeltaFileInfo& d : list_delta_files(dir)) {
    if (d.seq <= below_seq) fs::remove(d.path, ec);
  }
}

}  // namespace bcwan::store

// Atomic chainstate snapshots.
//
// A snapshot is a full Blockchain::serialize_state() dump plus the log
// sequence number it covers (`next_seq`): replay skips every log record
// with seq < next_seq. Files are named snapshot-<seq>.snap and written
// with the tmp + fflush + fsync + rename + fsync(dir) dance so a crash at
// any instant leaves either the old set of snapshots or the old set plus
// one complete new file — never a half-written one under the final name.
//
// On-disk layout: 8-byte magic "BCWANSNP" | u32 version | u64 next_seq
//                 | u32 payload_len | u32 crc32c(next_seq || payload)
//                 | payload (serialize_state bytes)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace bcwan::store {

inline constexpr char kSnapshotMagic[8] = {'B', 'C', 'W', 'A',
                                           'N', 'S', 'N', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

struct SnapshotInfo {
  std::uint64_t seq = 0;  // next_seq recorded in the file (from the name)
  std::string path;
  std::uint64_t bytes = 0;
};

/// Snapshot files in `dir`, newest (highest seq) first.
std::vector<SnapshotInfo> list_snapshots(const std::string& dir);

/// Atomically write a snapshot covering log records seq < `next_seq`.
bool write_snapshot_file(const std::string& dir, std::uint64_t next_seq,
                         util::ByteView state, SnapshotInfo* info,
                         std::string* error);

/// Load + CRC-verify one snapshot file. std::nullopt if unreadable, torn
/// or corrupt (the caller falls back to an older snapshot or full replay).
std::optional<util::Bytes> load_snapshot_file(const std::string& path,
                                              std::uint64_t* next_seq);

/// Delete all snapshots except the newest `keep` (bounds disk usage).
void prune_snapshots(const std::string& dir, std::size_t keep);

// ---------------------------------------------------------------------------
// Delta snapshots.
//
// An incremental snapshot records only what changed since its parent element
// (the previous base snapshot or delta): the blocks appended, the reorg
// pops/pushes, and the net UTXO diff. Files are named
// delta-<parent_seq>-<seq>.snap and written with the same atomic dance as
// base snapshots. Recovery loads the newest base, then applies the delta
// chain whose parent_seq links match, then replays the log tail.
//
// On-disk layout: 8-byte magic "BCWANDLT" | u32 version | u64 parent_seq
//                 | u64 next_seq | u32 payload_len
//                 | u32 crc32c(parent_seq || next_seq || payload)
//                 | payload (encode_state_delta bytes)
// ---------------------------------------------------------------------------

inline constexpr char kDeltaMagic[8] = {'B', 'C', 'W', 'A', 'N', 'D', 'L', 'T'};
inline constexpr std::uint32_t kDeltaFileVersion = 1;

struct DeltaFileInfo {
  std::uint64_t parent_seq = 0;  // element this delta applies on top of
  std::uint64_t seq = 0;         // next_seq once this delta is applied
  std::string path;
  std::uint64_t bytes = 0;
};

/// Delta files in `dir`, oldest (lowest seq) first — application order.
std::vector<DeltaFileInfo> list_delta_files(const std::string& dir);

/// Atomically write a delta on top of the element covering `parent_seq`.
bool write_delta_file(const std::string& dir, std::uint64_t parent_seq,
                      std::uint64_t next_seq, util::ByteView payload,
                      DeltaFileInfo* info, std::string* error);

/// Load + CRC-verify one delta file. std::nullopt if unreadable, torn or
/// corrupt (the caller falls back to the base snapshot + log replay).
std::optional<util::Bytes> load_delta_file(const std::string& path,
                                           std::uint64_t* parent_seq,
                                           std::uint64_t* next_seq);

/// Delete delta files whose seq is <= `below_seq` (folded into a base).
void prune_delta_files(const std::string& dir, std::uint64_t below_seq);

}  // namespace bcwan::store

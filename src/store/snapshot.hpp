// Atomic chainstate snapshots.
//
// A snapshot is a full Blockchain::serialize_state() dump plus the log
// sequence number it covers (`next_seq`): replay skips every log record
// with seq < next_seq. Files are named snapshot-<seq>.snap and written
// with the tmp + fflush + fsync + rename + fsync(dir) dance so a crash at
// any instant leaves either the old set of snapshots or the old set plus
// one complete new file — never a half-written one under the final name.
//
// On-disk layout: 8-byte magic "BCWANSNP" | u32 version | u64 next_seq
//                 | u32 payload_len | u32 crc32c(next_seq || payload)
//                 | payload (serialize_state bytes)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace bcwan::store {

inline constexpr char kSnapshotMagic[8] = {'B', 'C', 'W', 'A',
                                           'N', 'S', 'N', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

struct SnapshotInfo {
  std::uint64_t seq = 0;  // next_seq recorded in the file (from the name)
  std::string path;
  std::uint64_t bytes = 0;
};

/// Snapshot files in `dir`, newest (highest seq) first.
std::vector<SnapshotInfo> list_snapshots(const std::string& dir);

/// Atomically write a snapshot covering log records seq < `next_seq`.
bool write_snapshot_file(const std::string& dir, std::uint64_t next_seq,
                         util::ByteView state, SnapshotInfo* info,
                         std::string* error);

/// Load + CRC-verify one snapshot file. std::nullopt if unreadable, torn
/// or corrupt (the caller falls back to an older snapshot or full replay).
std::optional<util::Bytes> load_snapshot_file(const std::string& path,
                                              std::uint64_t* next_seq);

/// Delete all snapshots except the newest `keep` (bounds disk usage).
void prune_snapshots(const std::string& dir, std::size_t keep);

}  // namespace bcwan::store

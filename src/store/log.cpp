#include "store/log.hpp"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "store/crc32c.hpp"
#include "util/serial.hpp"

namespace bcwan::store {
namespace {

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         static_cast<std::uint64_t>(load_u32(p + 4)) << 32;
}

std::uint32_t record_crc(std::uint64_t seq, util::ByteView payload) {
  util::Writer w;
  w.u64(seq);
  return crc32c_extend(crc32c(w.data()), payload);
}

/// Try to parse a record at `offset`; fills `rec` and `next` on success.
/// `prev_seq` enforces the strictly-increasing sequence invariant (pass
/// nullptr to skip, as the corruption probe below must).
bool parse_record(util::ByteView data, std::uint64_t offset,
                  const std::uint64_t* prev_seq, RecordBounds& rec,
                  std::uint64_t& next) {
  if (offset + kRecordHeaderBytes > data.size()) return false;
  const std::uint8_t* p = data.data() + offset;
  if (load_u32(p) != kRecordMagic) return false;
  const std::uint64_t seq = load_u64(p + 4);
  const std::uint32_t len = load_u32(p + 12);
  const std::uint32_t crc = load_u32(p + 16);
  if (len > kMaxPayloadBytes) return false;
  if (offset + kRecordHeaderBytes + len > data.size()) return false;
  if (prev_seq != nullptr && seq <= *prev_seq) return false;
  const util::ByteView payload = data.subspan(
      static_cast<std::size_t>(offset) + kRecordHeaderBytes, len);
  if (record_crc(seq, payload) != crc) return false;
  rec.seq = seq;
  rec.offset = offset + kRecordHeaderBytes;
  rec.len = len;
  next = offset + kRecordHeaderBytes + len;
  return true;
}

/// After a bad record: is there ANY complete, CRC-valid record later in the
/// file? If yes the damage is mid-file corruption, not a torn tail.
bool valid_record_after(util::ByteView data, std::uint64_t from) {
  for (std::uint64_t off = from;
       off + kRecordHeaderBytes <= data.size(); ++off) {
    RecordBounds rec;
    std::uint64_t next = 0;
    if (load_u32(data.data() + off) != kRecordMagic) continue;
    if (parse_record(data, off, nullptr, rec, next)) return true;
  }
  return false;
}

bool fsync_file(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
  return ::fsync(::fileno(f)) == 0;
}

void set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

const char* scan_status_name(ScanStatus s) {
  switch (s) {
    case ScanStatus::kOk: return "ok";
    case ScanStatus::kTornTail: return "torn-tail";
    case ScanStatus::kCorrupt: return "corrupt";
    case ScanStatus::kBadHeader: return "bad-header";
  }
  return "unknown";
}

ScanImage scan_log_bounds(util::ByteView data) {
  ScanImage out;
  out.file_bytes = data.size();
  if (data.size() < kFileHeaderBytes ||
      std::memcmp(data.data(), kLogMagic, sizeof(kLogMagic)) != 0 ||
      load_u32(data.data() + sizeof(kLogMagic)) != kLogVersion) {
    out.status = ScanStatus::kBadHeader;
    return out;
  }
  std::uint64_t offset = kFileHeaderBytes;
  out.valid_bytes = offset;
  std::uint64_t prev_seq = 0;
  bool have_prev = false;
  while (offset < data.size()) {
    RecordBounds rec;
    std::uint64_t next = 0;
    if (!parse_record(data, offset, have_prev ? &prev_seq : nullptr, rec,
                      next)) {
      out.status = valid_record_after(data, offset + 1)
                       ? ScanStatus::kCorrupt
                       : ScanStatus::kTornTail;
      return out;
    }
    prev_seq = rec.seq;
    have_prev = true;
    out.records.push_back(rec);
    offset = next;
    out.valid_bytes = offset;
  }
  out.status = ScanStatus::kOk;
  return out;
}

ScanResult scan_log(util::ByteView data) {
  ScanImage bounds = scan_log_bounds(data);
  ScanResult out;
  out.status = bounds.status;
  out.valid_bytes = bounds.valid_bytes;
  out.file_bytes = bounds.file_bytes;
  out.records.reserve(bounds.records.size());
  for (const RecordBounds& rb : bounds.records) {
    LogRecord rec;
    rec.seq = rb.seq;
    const util::ByteView payload =
        data.subspan(static_cast<std::size_t>(rb.offset), rb.len);
    rec.payload.assign(payload.begin(), payload.end());
    out.records.push_back(std::move(rec));
  }
  return out;
}

BlockLog::~BlockLog() { close(); }

BlockLog::BlockLog(BlockLog&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      offset_(std::exchange(other.offset_, 0)) {}

BlockLog& BlockLog::operator=(BlockLog&& other) noexcept {
  if (this != &other) {
    close();
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    offset_ = std::exchange(other.offset_, 0);
  }
  return *this;
}

void BlockLog::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  offset_ = 0;
}

bool BlockLog::open(const std::string& path, ScanImage& scan,
                    std::string* error) {
  close();
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    set_error(error, "cannot open block log: " + path);
    return false;
  }

  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  util::Bytes data(size > 0 ? static_cast<std::size_t>(size) : 0);
  if (!data.empty() &&
      std::fread(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    set_error(error, "cannot read block log: " + path);
    return false;
  }

  if (data.empty()) {
    // Fresh log: write the file header.
    if (std::fwrite(kLogMagic, 1, sizeof(kLogMagic), f) != sizeof(kLogMagic)) {
      std::fclose(f);
      set_error(error, "cannot write block log header: " + path);
      return false;
    }
    util::Writer w;
    w.u32(kLogVersion);
    if (std::fwrite(w.data().data(), 1, w.data().size(), f) !=
            w.data().size() ||
        !fsync_file(f)) {
      std::fclose(f);
      set_error(error, "cannot write block log header: " + path);
      return false;
    }
    scan = ScanImage{};
    scan.valid_bytes = kFileHeaderBytes;
    scan.file_bytes = kFileHeaderBytes;
    file_ = f;
    path_ = path;
    offset_ = kFileHeaderBytes;
    return true;
  }

  scan = scan_log_bounds(data);
  scan.image = std::move(data);
  if (scan.status == ScanStatus::kBadHeader ||
      scan.status == ScanStatus::kCorrupt) {
    std::fclose(f);
    set_error(error, std::string("block log ") + scan_status_name(scan.status) +
                         ": " + path);
    return false;
  }
  if (scan.status == ScanStatus::kTornTail) {
    // Shear off the torn record and make the truncation durable before any
    // new append can land past it.
    if (::ftruncate(::fileno(f), static_cast<off_t>(scan.valid_bytes)) != 0 ||
        !fsync_file(f)) {
      std::fclose(f);
      set_error(error, "cannot truncate torn tail: " + path);
      return false;
    }
  }
  std::fseek(f, static_cast<long>(scan.valid_bytes), SEEK_SET);
  file_ = f;
  path_ = path;
  offset_ = scan.valid_bytes;
  return true;
}

bool BlockLog::open(const std::string& path, ScanResult& scan,
                    std::string* error) {
  ScanImage bounds;
  if (!open(path, bounds, error)) return false;
  scan = ScanResult{};
  scan.status = bounds.status;
  scan.valid_bytes = bounds.valid_bytes;
  scan.file_bytes = bounds.file_bytes;
  scan.records.reserve(bounds.records.size());
  for (const RecordBounds& rb : bounds.records) {
    LogRecord rec;
    rec.seq = rb.seq;
    const util::ByteView payload = bounds.payload(rb);
    rec.payload.assign(payload.begin(), payload.end());
    scan.records.push_back(std::move(rec));
  }
  return true;
}

bool BlockLog::append(std::uint64_t seq, util::ByteView payload, bool sync) {
  if (file_ == nullptr) return false;
  util::Writer w;
  w.u32(kRecordMagic);
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(record_crc(seq, payload));
  if (std::fwrite(w.data().data(), 1, w.data().size(), file_) !=
      w.data().size()) {
    return false;
  }
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return false;
  }
  if (sync) {
    if (!fsync_file(file_)) return false;
  } else if (std::fflush(file_) != 0) {
    return false;
  }
  offset_ += kRecordHeaderBytes + payload.size();
  return true;
}

bool BlockLog::sync() { return file_ != nullptr && fsync_file(file_); }

bool BlockLog::reset() {
  if (file_ == nullptr) return false;
  if (::ftruncate(::fileno(file_), 0) != 0) return false;
  std::rewind(file_);
  if (std::fwrite(kLogMagic, 1, sizeof(kLogMagic), file_) != sizeof(kLogMagic))
    return false;
  util::Writer w;
  w.u32(kLogVersion);
  if (std::fwrite(w.data().data(), 1, w.data().size(), file_) !=
      w.data().size()) {
    return false;
  }
  if (!fsync_file(file_)) return false;
  offset_ = kFileHeaderBytes;
  return true;
}

std::uint64_t tear_log_tail(const std::string& path, std::uint64_t bytes) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) return 0;
  const std::uint64_t cut =
      bytes < size ? bytes : static_cast<std::uint64_t>(size);
  std::filesystem::resize_file(path, size - cut, ec);
  return ec ? 0 : cut;
}

bool flip_log_byte(const std::string& path, std::uint64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return false;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    std::fclose(f);
    return false;
  }
  int c = std::fgetc(f);
  if (c == EOF) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, static_cast<long>(offset), SEEK_SET);
  const bool ok = std::fputc(c ^ 0xFF, f) != EOF && std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace bcwan::store

// CRC-32C (Castagnoli) — integrity checksum for the on-disk block log and
// chainstate snapshots. Chosen over plain CRC-32 for its better error
// detection on short records and for hardware support (SSE4.2 CRC32
// instruction) on the x86 gateways this simulates.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"

namespace bcwan::store {

/// One-shot CRC-32C of a buffer.
std::uint32_t crc32c(util::ByteView data);

/// Streaming form: feed `crc` from a previous call (start from 0) to extend
/// the checksum over multiple buffers, e.g. crc32c(seq bytes) then payload.
std::uint32_t crc32c_extend(std::uint32_t crc, util::ByteView data);

/// Name of the active implementation ("sse42" or "table") — surfaced in
/// telemetry and bench output like the SHA-256 backend name.
const char* crc32c_backend();

}  // namespace bcwan::store

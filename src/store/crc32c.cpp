#include "store/crc32c.hpp"

#include <array>

#if defined(__x86_64__) || defined(__i386__)
#define BCWAN_CRC32C_X86 1
#include <nmmintrin.h>
#endif

namespace bcwan::store {
namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

std::uint32_t extend_table(std::uint32_t crc, util::ByteView data) {
  crc = ~crc;
  for (const std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
  }
  return ~crc;
}

#if BCWAN_CRC32C_X86
__attribute__((target("sse4.2"))) std::uint32_t extend_sse42(
    std::uint32_t crc, util::ByteView data) {
  crc = ~crc;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, 8);
    crc = static_cast<std::uint32_t>(_mm_crc32_u64(crc, word));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p);
    ++p;
    --n;
  }
  return ~crc;
}

bool have_sse42() {
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
}
#endif

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc, util::ByteView data) {
#if BCWAN_CRC32C_X86
  if (have_sse42()) return extend_sse42(crc, data);
#endif
  return extend_table(crc, data);
}

std::uint32_t crc32c(util::ByteView data) { return crc32c_extend(0, data); }

const char* crc32c_backend() {
#if BCWAN_CRC32C_X86
  if (have_sse42()) return "sse42";
#endif
  return "table";
}

}  // namespace bcwan::store

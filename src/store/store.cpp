#include "store/store.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <system_error>
#include <thread>

#include "store/snapshot.hpp"
#include "telemetry/metrics.hpp"
#include "util/serial.hpp"
#include "util/threadpool.hpp"

namespace fs = std::filesystem;

namespace bcwan::store {
namespace {

constexpr const char* kLogFileName = "blocks.log";

/// Below this many pending records open() decodes on the calling thread;
/// pool dispatch would eat the win on tiny logs.
constexpr std::size_t kMinRecordsForParallelDecode = 64;

void set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

void note_recovery_telemetry(const RecoveryStats& stats) {
  if (!telemetry::enabled()) return;
  auto& reg = telemetry::registry();
  reg.counter("bcwan_store_replayed_blocks_total",
              "Blocks replayed from the block log during recovery")
      .add(stats.replayed_blocks);
  reg.counter("bcwan_store_truncated_bytes_total",
              "Torn-tail bytes sheared off the block log during recovery")
      .add(stats.truncated_bytes);
  reg.counter("bcwan_store_snapshots_skipped_total",
              "Corrupt or unreadable snapshots passed over during recovery")
      .add(stats.snapshots_skipped);
  reg.counter("bcwan_store_deltas_applied_total",
              "Delta snapshot elements applied during recovery")
      .add(stats.deltas_applied);
  reg.counter("bcwan_store_deltas_skipped_total",
              "Corrupt or unchained delta elements dropped during recovery")
      .add(stats.deltas_skipped);
  reg.counter("bcwan_store_recoveries_total",
              "Successful open-or-recover cycles")
      .add();
  reg.histogram("bcwan_store_replay_seconds",
                "Wall-clock time to replay the block log during recovery")
      .observe(stats.replay_seconds);
}

}  // namespace

std::string log_file_path(const std::string& dir) {
  return (fs::path(dir) / kLogFileName).string();
}

util::Bytes encode_block_record(const chain::Block& block,
                                const chain::BlockUndo* undo) {
  // Record kind 2 carries the block hash and every txid alongside the
  // serialized block: replay trusts the CRC-protected log exactly as it
  // already trusts it to skip validation, so recovery never re-runs
  // SHA-256d over blocks it wrote itself (the dominant cost of decode on
  // hardware with slow hashing). Kind-1 records (no ids) remain readable.
  util::Writer w;
  w.u8(2);  // record kind: block + recorded ids
  w.u8(undo != nullptr ? 1 : 0);
  const chain::Hash256 hash = block.hash();
  w.bytes(util::ByteView(hash.data(), hash.size()));
  w.var_bytes(block.serialize());
  for (const chain::Transaction& tx : block.txs) {
    const chain::Hash256 txid = tx.txid();
    w.bytes(util::ByteView(txid.data(), txid.size()));
  }
  if (undo != nullptr) chain::write_undo(w, *undo);
  return w.take();
}

std::optional<DecodedBlockRecord> decode_block_record(util::ByteView payload) {
  try {
    util::Reader r(payload);
    const std::uint8_t kind = r.u8();
    if (kind != 1 && kind != 2) return std::nullopt;
    const bool has_undo = r.u8() != 0;
    DecodedBlockRecord out;
    if (kind == 2) {
      std::memcpy(out.hash.data(), r.view(out.hash.size()).data(),
                  out.hash.size());
      auto block = chain::Block::deserialize(r.var_view(), false);
      if (!block) return std::nullopt;
      out.block = *std::move(block);
      for (const chain::Transaction& tx : out.block.txs) {
        chain::Hash256 txid{};
        std::memcpy(txid.data(), r.view(txid.size()).data(), txid.size());
        tx.seed_txid(txid);
      }
    } else {
      auto block = chain::Block::deserialize(r.var_view());
      if (!block) return std::nullopt;
      out.block = *std::move(block);
      out.hash = out.block.hash();
    }
    if (has_undo) out.undo = chain::read_undo(r);
    r.expect_done();
    return out;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

std::unique_ptr<ChainStore> ChainStore::open(const chain::ChainParams& params,
                                             StoreOptions options,
                                             std::string* error) {
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    set_error(error, "cannot create store dir: " + options.dir);
    return nullptr;
  }

  auto store = std::unique_ptr<ChainStore>(new ChainStore());
  store->options_ = std::move(options);

  // 1. Newest valid base snapshot; corrupt ones fall back to older /
  // genesis. The winning payload is kept around: a delta-chain apply
  // failure below rebuilds from it.
  std::optional<chain::Blockchain> chain;
  util::Bytes base_payload;
  std::uint64_t element_seq = 0;  // covers log records with seq below this
  for (const SnapshotInfo& info : list_snapshots(store->options_.dir)) {
    std::uint64_t next_seq = 0;
    auto payload = load_snapshot_file(info.path, &next_seq);
    if (!payload) {
      ++store->recovery_.snapshots_skipped;
      continue;
    }
    auto restored = chain::Blockchain::restore_state(params, *payload);
    if (!restored) {
      ++store->recovery_.snapshots_skipped;
      continue;
    }
    chain = std::move(restored);
    base_payload = *std::move(payload);
    element_seq = next_seq;
    store->recovery_.snapshot_loaded = true;
    store->recovery_.snapshot_seq = next_seq;
    if (telemetry::enabled()) {
      telemetry::registry()
          .gauge("bcwan_store_snapshot_bytes",
                 "Size of the most recently loaded or written snapshot")
          .set(static_cast<double>(info.bytes));
    }
    break;
  }
  if (!chain) chain.emplace(params);

  // 2. Delta chain on top of the base, linked by parent seq. Any broken
  // link (missing/corrupt file, decode failure, structurally inconsistent
  // apply) drops that delta and everything after it — the log tail and the
  // next compaction cover the difference.
  if (store->recovery_.snapshot_loaded) {
    const std::vector<DeltaFileInfo> deltas =
        list_delta_files(store->options_.dir);
    std::vector<chain::StateDelta> applied;  // good prefix, for reassembly
    for (const DeltaFileInfo& d : deltas) {
      if (d.seq <= element_seq) continue;  // already folded into the base
      if (d.parent_seq != element_seq) {
        ++store->recovery_.deltas_skipped;
        continue;
      }
      std::uint64_t parent_seq = 0;
      std::uint64_t next_seq = 0;
      const auto payload = load_delta_file(d.path, &parent_seq, &next_seq);
      std::optional<chain::StateDelta> delta;
      if (payload && parent_seq == element_seq && next_seq == d.seq) {
        delta = chain::decode_state_delta(*payload);
      }
      if (!delta || !chain->apply_state_delta(*delta)) {
        // apply_state_delta may leave the chain half-mutated; rebuild the
        // base plus the prefix that already applied cleanly.
        if (delta) {
          chain = chain::Blockchain::restore_state(params, base_payload);
          for (const chain::StateDelta& good : applied) {
            if (chain && !chain->apply_state_delta(good)) chain.reset();
          }
          if (!chain) {  // cannot happen for a payload that restored before
            chain.emplace(params);
            element_seq = 0;
            store->recovery_.snapshot_loaded = false;
            store->recovery_.deltas_applied = 0;
          }
        }
        ++store->recovery_.deltas_skipped;
        continue;  // later deltas cannot chain from element_seq any more
      }
      element_seq = d.seq;
      ++store->recovery_.deltas_applied;
      applied.push_back(std::move(*delta));
    }
  }
  store->last_element_seq_ = element_seq;
  store->deltas_since_base_ = store->recovery_.deltas_applied;

  // 3. Arm the incremental machinery at the assembled state: the journal
  // window and anchor start HERE, before log replay, so the replayed tail
  // is part of the next delta.
  if (store->options_.incremental_snapshots) {
    chain->utxo_journal_begin();
    store->anchor_tip_ = chain->tip_hash();
    store->anchor_height_ = chain->height();
    store->have_anchor_ = true;
  }

  // Element writes prune undo at the configured depth, but delta payloads
  // carry no pruning watermark — restoring base + deltas would silently
  // resurrect reorg-ability past the policy. Re-prune at the element tip
  // BEFORE replay so the log tail (which may hold a rival branch) faces
  // the same reorg refusal the pre-crash chain enforced.
  if (store->options_.undo_prune_depth >= 0) {
    chain->prune_undo(store->options_.undo_prune_depth);
  }

  // 4. The log: refuse mid-file corruption, truncate a torn tail. The scan
  // keeps payloads in the owned file image; replay decodes views out of it.
  ScanImage scan;
  const std::string log_path =
      (fs::path(store->options_.dir) / kLogFileName).string();
  if (!store->log_.open(log_path, scan, error)) return nullptr;
  store->recovery_.truncated_bytes = scan.truncated_bytes();
  store->recovery_.log_bytes = scan.valid_bytes;

  // 5. Replay everything the element chain does not already cover:
  // CRC/deserialize/hash on the pool, apply strictly in log order.
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t last_seq = 0;
  std::vector<const RecordBounds*> todo;
  todo.reserve(scan.records.size());
  for (const RecordBounds& rb : scan.records) {
    last_seq = rb.seq;
    if (rb.seq >= element_seq) todo.push_back(&rb);
  }

  int threads = store->options_.replay_threads;
  if (threads < 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  store->recovery_.decode_threads = static_cast<unsigned>(threads);

  const std::size_t n = todo.size();
  std::vector<std::optional<DecodedBlockRecord>> decoded(n);
  const auto decode_range = [&scan, &todo, &decoded](std::size_t begin,
                                                     std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      decoded[i] = decode_block_record(scan.payload(*todo[i]));
  };
  if (threads > 1 && n >= kMinRecordsForParallelDecode) {
    const std::size_t slices = std::min<std::size_t>(
        static_cast<std::size_t>(threads), n / (kMinRecordsForParallelDecode / 2));
    const std::size_t per = (n + slices - 1) / slices;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(slices);
    for (std::size_t begin = 0; begin < n; begin += per) {
      const std::size_t end = std::min(begin + per, n);
      tasks.push_back([&decode_range, begin, end] { decode_range(begin, end); });
    }
    util::ThreadPool::shared(static_cast<std::size_t>(threads) - 1)
        .run(std::move(tasks));
  } else {
    decode_range(0, n);
  }

  std::size_t total_txs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!decoded[i]) {
      set_error(error, "log record " + std::to_string(todo[i]->seq) +
                           " passed CRC but does not decode");
      return nullptr;
    }
    total_txs += decoded[i]->block.txs.size();
  }
  chain->reserve_for_replay(n, total_txs);

  for (std::size_t i = 0; i < n; ++i) {
    DecodedBlockRecord& rec = *decoded[i];
    const chain::AcceptBlockResult result = chain->replay_block(
        std::move(rec.block), rec.hash, rec.undo ? &*rec.undo : nullptr);
    if (result == chain::AcceptBlockResult::kOrphan ||
        result == chain::AcceptBlockResult::kInvalid) {
      set_error(error, "log record " + std::to_string(todo[i]->seq) +
                           " failed replay (" +
                           chain::accept_block_result_name(result) + ")");
      return nullptr;
    }
    if (store->options_.incremental_snapshots &&
        result != chain::AcceptBlockResult::kDuplicate) {
      store->pending_blocks_.push_back(rec.hash);
    }
    ++store->recovery_.replayed_blocks;
  }
  store->recovery_.replay_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  store->recovery_.tip_height = chain->height();

  // An element newer than the log tail (crash between element publish and
  // the next append) must still win the next-seq race.
  store->next_seq_ =
      std::max(last_seq + 1, std::max<std::uint64_t>(element_seq, 1));
  store->chain_ = std::move(chain);

  note_recovery_telemetry(store->recovery_);
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.gauge("bcwan_store_log_bytes", "Current block log size")
        .set(static_cast<double>(store->log_.size_bytes()));
    reg.gauge("bcwan_store_snapshot_age_blocks",
              "Blocks appended since the last snapshot element")
        .set(0.0);
  }
  return store;
}

chain::Blockchain ChainStore::take_chain() {
  chain::Blockchain out = std::move(*chain_);
  chain_.reset();
  return out;
}

bool ChainStore::append_block(const chain::Block& block,
                              const chain::BlockUndo* undo) {
  const util::Bytes payload = encode_block_record(block, undo);
  if (!log_.append(next_seq_, payload, options_.fsync_each_append))
    return false;
  ++next_seq_;
  ++appends_since_snapshot_;
  if (options_.incremental_snapshots) pending_blocks_.push_back(block.hash());
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("bcwan_store_appended_blocks_total",
                "Blocks appended to the block log")
        .add();
    reg.gauge("bcwan_store_log_bytes", "Current block log size")
        .set(static_cast<double>(log_.size_bytes()));
    reg.gauge("bcwan_store_snapshot_age_blocks",
              "Blocks appended since the last snapshot element")
        .set(static_cast<double>(appends_since_snapshot_));
  }
  return true;
}

void ChainStore::rearm_anchor(chain::Blockchain& chain) {
  if (!options_.incremental_snapshots) return;
  chain.utxo_journal_begin();
  anchor_tip_ = chain.tip_hash();
  anchor_height_ = chain.height();
  have_anchor_ = true;
  pending_blocks_.clear();
}

bool ChainStore::maybe_snapshot(chain::Blockchain& chain) {
  if (options_.snapshot_interval == 0 ||
      appends_since_snapshot_ < options_.snapshot_interval) {
    return false;
  }
  if (options_.incremental_snapshots && last_element_seq_ > 0 &&
      options_.compact_every > 0 &&
      deltas_since_base_ < options_.compact_every) {
    if (write_delta(chain)) return true;
    // Delta path failed — fall through to a compacting full base.
  }
  return write_snapshot(chain);
}

bool ChainStore::write_delta(chain::Blockchain& chain) {
  if (!options_.incremental_snapshots || !have_anchor_ ||
      last_element_seq_ == 0) {
    return false;
  }
  auto delta =
      chain.collect_state_delta(anchor_tip_, anchor_height_, pending_blocks_);
  // collect failing leaves the journal window intact; anything failing
  // AFTER the window was consumed must poison the anchor so the next
  // element is forced to be a full base (a second delta against a consumed
  // window would silently drop UTXO changes).
  if (!delta) return false;
  delta->parent_seq = last_element_seq_;
  delta->next_seq = next_seq_;
  const util::Bytes payload = chain::encode_state_delta(*delta);
  DeltaFileInfo info;
  if (!write_delta_file(options_.dir, last_element_seq_, next_seq_, payload,
                        &info, nullptr) ||
      !log_.reset()) {
    have_anchor_ = false;
    return false;
  }
  last_delta_bytes_ = info.bytes;
  last_element_seq_ = next_seq_;
  ++deltas_since_base_;
  appends_since_snapshot_ = 0;
  rearm_anchor(chain);
  if (options_.undo_prune_depth >= 0)
    chain.prune_undo(options_.undo_prune_depth);
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("bcwan_store_deltas_written_total",
                "Delta snapshot elements written")
        .add();
    reg.gauge("bcwan_store_delta_bytes",
              "Size of the most recently written delta element")
        .set(static_cast<double>(info.bytes));
    reg.gauge("bcwan_store_snapshot_age_blocks",
              "Blocks appended since the last snapshot element")
        .set(0.0);
    reg.gauge("bcwan_store_log_bytes", "Current block log size")
        .set(static_cast<double>(log_.size_bytes()));
  }
  return true;
}

bool ChainStore::write_snapshot(chain::Blockchain& chain) {
  const auto t0 = std::chrono::steady_clock::now();
  const util::Bytes state = chain.serialize_state(options_.undo_prune_depth);
  SnapshotInfo info;
  if (!write_snapshot_file(options_.dir, next_seq_, state, &info, nullptr))
    return false;
  // The snapshot is durable (fsync'd file + dir), so every logged record is
  // now redundant — rotate the log rather than letting it grow forever.
  if (!log_.reset()) return false;
  prune_snapshots(options_.dir, options_.keep_snapshots);
  // Deltas at or below the oldest surviving base are folded into it; the
  // ones above it still let an older base roll forward if this one rots.
  const std::vector<SnapshotInfo> kept = list_snapshots(options_.dir);
  if (!kept.empty()) prune_delta_files(options_.dir, kept.back().seq);
  last_compaction_ms_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() *
      1e3;
  appends_since_snapshot_ = 0;
  deltas_since_base_ = 0;
  last_element_seq_ = next_seq_;
  rearm_anchor(chain);
  if (options_.undo_prune_depth >= 0)
    chain.prune_undo(options_.undo_prune_depth);
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("bcwan_store_snapshots_written_total",
                "Chainstate snapshots written")
        .add();
    reg.gauge("bcwan_store_snapshot_bytes",
              "Size of the most recently loaded or written snapshot")
        .set(static_cast<double>(info.bytes));
    reg.histogram("bcwan_store_compaction_seconds",
                  "Wall-clock time of one full-base compaction")
        .observe(last_compaction_ms_ / 1e3);
    reg.gauge("bcwan_store_snapshot_age_blocks",
              "Blocks appended since the last snapshot element")
        .set(0.0);
    reg.gauge("bcwan_store_log_bytes", "Current block log size")
        .set(static_cast<double>(log_.size_bytes()));
  }
  return true;
}

}  // namespace bcwan::store

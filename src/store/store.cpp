#include "store/store.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>

#include "store/snapshot.hpp"
#include "telemetry/metrics.hpp"
#include "util/serial.hpp"

namespace fs = std::filesystem;

namespace bcwan::store {
namespace {

constexpr const char* kLogFileName = "blocks.log";

void set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

void note_recovery_telemetry(const RecoveryStats& stats) {
  if (!telemetry::enabled()) return;
  auto& reg = telemetry::registry();
  reg.counter("bcwan_store_replayed_blocks_total",
              "Blocks replayed from the block log during recovery")
      .add(stats.replayed_blocks);
  reg.counter("bcwan_store_truncated_bytes_total",
              "Torn-tail bytes sheared off the block log during recovery")
      .add(stats.truncated_bytes);
  reg.counter("bcwan_store_snapshots_skipped_total",
              "Corrupt or unreadable snapshots passed over during recovery")
      .add(stats.snapshots_skipped);
  reg.counter("bcwan_store_recoveries_total",
              "Successful open-or-recover cycles")
      .add();
  reg.histogram("bcwan_store_replay_seconds",
                "Wall-clock time to replay the block log during recovery")
      .observe(stats.replay_seconds);
}

}  // namespace

std::string log_file_path(const std::string& dir) {
  return (fs::path(dir) / kLogFileName).string();
}

util::Bytes encode_block_record(const chain::Block& block,
                                const chain::BlockUndo* undo) {
  util::Writer w;
  w.u8(1);  // record kind: block
  w.u8(undo != nullptr ? 1 : 0);
  w.var_bytes(block.serialize());
  if (undo != nullptr) chain::write_undo(w, *undo);
  return w.take();
}

std::optional<DecodedBlockRecord> decode_block_record(util::ByteView payload) {
  try {
    util::Reader r(payload);
    if (r.u8() != 1) return std::nullopt;
    const bool has_undo = r.u8() != 0;
    const auto block = chain::Block::deserialize(r.var_bytes());
    if (!block) return std::nullopt;
    DecodedBlockRecord out;
    out.block = *block;
    if (has_undo) out.undo = chain::read_undo(r);
    r.expect_done();
    return out;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

std::unique_ptr<ChainStore> ChainStore::open(const chain::ChainParams& params,
                                             StoreOptions options,
                                             std::string* error) {
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    set_error(error, "cannot create store dir: " + options.dir);
    return nullptr;
  }

  auto store = std::unique_ptr<ChainStore>(new ChainStore());
  store->options_ = std::move(options);

  // 1. Newest valid snapshot; corrupt ones fall back to older / genesis.
  std::optional<chain::Blockchain> chain;
  std::uint64_t snap_seq = 0;
  for (const SnapshotInfo& info : list_snapshots(store->options_.dir)) {
    std::uint64_t next_seq = 0;
    const auto payload = load_snapshot_file(info.path, &next_seq);
    if (!payload) {
      ++store->recovery_.snapshots_skipped;
      continue;
    }
    auto restored = chain::Blockchain::restore_state(params, *payload);
    if (!restored) {
      ++store->recovery_.snapshots_skipped;
      continue;
    }
    chain = std::move(restored);
    snap_seq = next_seq;
    store->recovery_.snapshot_loaded = true;
    store->recovery_.snapshot_seq = next_seq;
    if (telemetry::enabled()) {
      telemetry::registry()
          .gauge("bcwan_store_snapshot_bytes",
                 "Size of the most recently loaded or written snapshot")
          .set(static_cast<double>(info.bytes));
    }
    break;
  }
  if (!chain) chain.emplace(params);

  // 2. The log: refuse mid-file corruption, truncate a torn tail.
  ScanResult scan;
  const std::string log_path =
      (fs::path(store->options_.dir) / kLogFileName).string();
  if (!store->log_.open(log_path, scan, error)) return nullptr;
  store->recovery_.truncated_bytes = scan.truncated_bytes();
  store->recovery_.log_bytes = scan.valid_bytes;

  // 3. Replay everything the snapshot does not already cover.
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t last_seq = 0;
  for (const LogRecord& rec : scan.records) {
    last_seq = rec.seq;
    if (rec.seq < snap_seq) continue;
    const auto decoded = decode_block_record(rec.payload);
    if (!decoded) {
      set_error(error, "log record " + std::to_string(rec.seq) +
                           " passed CRC but does not decode");
      return nullptr;
    }
    const chain::AcceptBlockResult result = chain->replay_block(
        decoded->block, decoded->undo ? &*decoded->undo : nullptr);
    if (result == chain::AcceptBlockResult::kOrphan ||
        result == chain::AcceptBlockResult::kInvalid) {
      set_error(error, "log record " + std::to_string(rec.seq) +
                           " failed replay (" +
                           chain::accept_block_result_name(result) + ")");
      return nullptr;
    }
    ++store->recovery_.replayed_blocks;
  }
  store->recovery_.replay_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  store->recovery_.tip_height = chain->height();

  // A snapshot newer than the log tail (crash between snapshot publish and
  // the next append) must still win the next-seq race.
  store->next_seq_ = std::max(last_seq + 1, std::max<std::uint64_t>(snap_seq, 1));
  store->chain_ = std::move(chain);

  note_recovery_telemetry(store->recovery_);
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.gauge("bcwan_store_log_bytes", "Current block log size")
        .set(static_cast<double>(store->log_.size_bytes()));
    reg.gauge("bcwan_store_snapshot_age_blocks",
              "Blocks appended since the last snapshot")
        .set(0.0);
  }
  return store;
}

chain::Blockchain ChainStore::take_chain() {
  chain::Blockchain out = std::move(*chain_);
  chain_.reset();
  return out;
}

bool ChainStore::append_block(const chain::Block& block,
                              const chain::BlockUndo* undo) {
  const util::Bytes payload = encode_block_record(block, undo);
  if (!log_.append(next_seq_, payload, options_.fsync_each_append))
    return false;
  ++next_seq_;
  ++appends_since_snapshot_;
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("bcwan_store_appended_blocks_total",
                "Blocks appended to the block log")
        .add();
    reg.gauge("bcwan_store_log_bytes", "Current block log size")
        .set(static_cast<double>(log_.size_bytes()));
    reg.gauge("bcwan_store_snapshot_age_blocks",
              "Blocks appended since the last snapshot")
        .set(static_cast<double>(appends_since_snapshot_));
  }
  return true;
}

bool ChainStore::maybe_snapshot(const chain::Blockchain& chain) {
  if (options_.snapshot_interval == 0 ||
      appends_since_snapshot_ < options_.snapshot_interval) {
    return false;
  }
  return write_snapshot(chain);
}

bool ChainStore::write_snapshot(const chain::Blockchain& chain) {
  const util::Bytes state = chain.serialize_state();
  SnapshotInfo info;
  if (!write_snapshot_file(options_.dir, next_seq_, state, &info, nullptr))
    return false;
  // The snapshot is durable (fsync'd file + dir), so every logged record is
  // now redundant — rotate the log rather than letting it grow forever.
  if (!log_.reset()) return false;
  prune_snapshots(options_.dir, options_.keep_snapshots);
  appends_since_snapshot_ = 0;
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("bcwan_store_snapshots_written_total",
                "Chainstate snapshots written")
        .add();
    reg.gauge("bcwan_store_snapshot_bytes",
              "Size of the most recently loaded or written snapshot")
        .set(static_cast<double>(info.bytes));
    reg.gauge("bcwan_store_snapshot_age_blocks",
              "Blocks appended since the last snapshot")
        .set(0.0);
    reg.gauge("bcwan_store_log_bytes", "Current block log size")
        .set(static_cast<double>(log_.size_bytes()));
  }
  return true;
}

}  // namespace bcwan::store

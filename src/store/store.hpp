// Durable chainstate: block log + snapshots + crash recovery.
//
// ChainStore::open() is the single entry point: it loads the newest valid
// base snapshot, applies the incremental delta chain on top of it,
// truncates a torn log tail, replays the remaining records through the
// trusted Blockchain::replay_block() path and hands back a fully recovered
// chain. The owning node then wires the store in as the chain's block sink
// so every accepted block is logged before its orphan descendants connect.
//
// Element model: the on-disk state is a chain of *elements* — a full base
// snapshot followed by delta snapshots, each covering every log record
// with seq below its own. Writing an element rotates the log. Every
// `compact_every` deltas the next element is a fresh base that folds the
// chain (compaction), after which superseded deltas are pruned. A delta
// costs O(blocks changed since the previous element); only compaction pays
// the O(UTXO set) full-dump price.
//
// Recovery state machine (see DESIGN.md §11 and §16):
//
//   open dir ─→ load newest base ──bad──→ older base / genesis
//        │            └─→ apply delta chain (linked by parent seq);
//        │                a bad delta drops it and everything after
//        ├─→ scan log ──bad header / mid-file corruption──→ REFUSE
//        │        └──torn tail──→ truncate (durable) ─┐
//        └────────────────────────────────────────────┴─→ replay seq ≥
//             element seq ──any record fails──→ REFUSE
//                          └─→ OPEN (next append seq =
//                              max(last log seq + 1, element seq))
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "store/log.hpp"

namespace bcwan::store {

struct StoreOptions {
  std::string dir;
  /// Blocks between automatic snapshot elements (maybe_snapshot).
  std::uint64_t snapshot_interval = 16;
  /// fsync the log after every append. Durability for daemons; benches and
  /// bulk sims turn it off and rely on the torn-tail recovery path.
  bool fsync_each_append = true;
  /// Base snapshots retained after a new one is written.
  std::size_t keep_snapshots = 2;
  /// Write incremental deltas between full bases. Off = every element is a
  /// full base (the pre-delta behavior).
  bool incremental_snapshots = true;
  /// Deltas written between full-base compactions. 0 = compact on every
  /// element (deltas effectively disabled).
  std::uint64_t compact_every = 8;
  /// Clear spent-coin undo data of active blocks buried deeper than this
  /// below the tip when an element is written; a restored chain refuses
  /// reorganizations past them. -1 keeps all undo data forever.
  int undo_prune_depth = -1;
  /// Threads decoding log records during open() (CRC'd payload -> block +
  /// undo + hash); application stays strictly sequential. -1 = one per
  /// hardware thread.
  int replay_threads = -1;
};

struct RecoveryStats {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_seq = 0;     // next_seq of the loaded base
  std::size_t snapshots_skipped = 0;  // corrupt/unreadable ones passed over
  std::size_t deltas_applied = 0;     // delta chain applied on the base
  std::size_t deltas_skipped = 0;     // corrupt/unchained deltas dropped
  std::size_t replayed_blocks = 0;
  std::uint64_t truncated_bytes = 0;  // torn tail sheared off the log
  std::uint64_t log_bytes = 0;        // log size after truncation
  double replay_seconds = 0.0;
  unsigned decode_threads = 1;
  int tip_height = -1;
};

class ChainStore {
 public:
  /// Open-or-recover. nullptr (with `error` filled) only on unrecoverable
  /// states: mid-file log corruption, foreign file header, I/O failure, or
  /// a log record the chain itself refuses to replay.
  static std::unique_ptr<ChainStore> open(const chain::ChainParams& params,
                                          StoreOptions options,
                                          std::string* error = nullptr);

  /// The recovered chain, moved out exactly once. The caller must then
  /// re-attach the store: chain.set_block_sink([&store](b, u) {
  /// store.append_block(b, u); }).
  chain::Blockchain take_chain();

  const RecoveryStats& recovery() const noexcept { return recovery_; }
  const StoreOptions& options() const noexcept { return options_; }
  std::uint64_t next_seq() const noexcept { return next_seq_; }
  std::uint64_t log_bytes() const noexcept { return log_.size_bytes(); }
  std::string log_path() const { return log_.path(); }

  /// Wall-clock of the most recent full-base write (compaction), ms.
  double last_compaction_ms() const noexcept { return last_compaction_ms_; }
  /// On-disk size of the most recently written delta element.
  std::uint64_t last_delta_bytes() const noexcept { return last_delta_bytes_; }
  /// Deltas written since the newest base (0 right after a compaction).
  std::uint64_t deltas_since_base() const noexcept {
    return deltas_since_base_;
  }
  /// Log seq of the newest on-disk element (0 = none yet).
  std::uint64_t last_element_seq() const noexcept { return last_element_seq_; }

  /// Block-sink entry point: append one accepted block (undo present iff it
  /// connected directly at the tip) to the log.
  bool append_block(const chain::Block& block, const chain::BlockUndo* undo);

  /// Write an element if `snapshot_interval` blocks were appended since the
  /// last one: a delta while the chain since the last base is short, a
  /// compacting base otherwise. Returns true if an element was written.
  /// Non-const: delta collection consumes the chain's UTXO journal window
  /// and element writes may prune in-memory undo data.
  bool maybe_snapshot(chain::Blockchain& chain);

  /// Unconditionally write a full base snapshot (compaction): fold the
  /// delta chain, rotate the log, prune superseded bases and deltas.
  bool write_snapshot(chain::Blockchain& chain);

  /// Write one delta element on top of the current element chain. False
  /// (caller should fall back to write_snapshot) when no base exists yet,
  /// the anchor was invalidated, or the delta cannot be collected.
  bool write_delta(chain::Blockchain& chain);

  bool sync() { return log_.sync(); }

 private:
  ChainStore() = default;

  /// Re-arm the incremental machinery at the just-written element: fresh
  /// journal window, anchor at the current tip, empty pending list.
  void rearm_anchor(chain::Blockchain& chain);

  StoreOptions options_;
  BlockLog log_;
  std::optional<chain::Blockchain> chain_;  // until take_chain()
  RecoveryStats recovery_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t appends_since_snapshot_ = 0;

  // Incremental element chain state.
  std::uint64_t last_element_seq_ = 0;  // 0 = no element on disk yet
  std::uint64_t deltas_since_base_ = 0;
  bool have_anchor_ = false;
  chain::Hash256 anchor_tip_{};  // tip at the last element
  int anchor_height_ = -1;
  std::vector<chain::Hash256> pending_blocks_;  // stored since last element
  double last_compaction_ms_ = 0.0;
  std::uint64_t last_delta_bytes_ = 0;
};

/// Path of the block log inside a store directory (chaos hooks shear its
/// tail while the owning node is down).
std::string log_file_path(const std::string& dir);

/// Serialize one log payload: kind | has_undo | block | undo.
util::Bytes encode_block_record(const chain::Block& block,
                                const chain::BlockUndo* undo);

/// Parse a log payload. std::nullopt on malformed bytes (CRC passed but the
/// content does not decode — treated as unrecoverable corruption). The
/// block hash is computed during decode so the store's parallel decoder
/// moves that work off the sequential apply path.
struct DecodedBlockRecord {
  chain::Block block;
  chain::Hash256 hash{};
  std::optional<chain::BlockUndo> undo;
};
std::optional<DecodedBlockRecord> decode_block_record(util::ByteView payload);

}  // namespace bcwan::store

// Durable chainstate: block log + snapshots + crash recovery.
//
// ChainStore::open() is the single entry point: it loads the newest valid
// snapshot, truncates a torn log tail, replays the remaining records
// through the trusted Blockchain::replay_block() path and hands back a
// fully recovered chain. The owning node then wires the store in as the
// chain's block sink so every accepted block is logged before its orphan
// descendants connect.
//
// Recovery state machine (see DESIGN.md §11):
//
//   open dir ─→ load newest snapshot ──bad──→ older snapshot / genesis
//        │
//        ├─→ scan log ──bad header / mid-file corruption──→ REFUSE
//        │        └──torn tail──→ truncate (durable) ─┐
//        └────────────────────────────────────────────┴─→ replay seq ≥
//             snapshot.next_seq ──any record fails──→ REFUSE
//                                └─→ OPEN (next append seq =
//                                    max(last log seq + 1, snapshot seq))
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "chain/blockchain.hpp"
#include "store/log.hpp"

namespace bcwan::store {

struct StoreOptions {
  std::string dir;
  /// Blocks between automatic snapshots (maybe_snapshot).
  std::uint64_t snapshot_interval = 16;
  /// fsync the log after every append. Durability for daemons; benches and
  /// bulk sims turn it off and rely on the torn-tail recovery path.
  bool fsync_each_append = true;
  /// Snapshots retained after a new one is written.
  std::size_t keep_snapshots = 2;
};

struct RecoveryStats {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_seq = 0;     // next_seq of the loaded snapshot
  std::size_t snapshots_skipped = 0;  // corrupt/unreadable ones passed over
  std::size_t replayed_blocks = 0;
  std::uint64_t truncated_bytes = 0;  // torn tail sheared off the log
  std::uint64_t log_bytes = 0;        // log size after truncation
  double replay_seconds = 0.0;
  int tip_height = -1;
};

class ChainStore {
 public:
  /// Open-or-recover. nullptr (with `error` filled) only on unrecoverable
  /// states: mid-file log corruption, foreign file header, I/O failure, or
  /// a log record the chain itself refuses to replay.
  static std::unique_ptr<ChainStore> open(const chain::ChainParams& params,
                                          StoreOptions options,
                                          std::string* error = nullptr);

  /// The recovered chain, moved out exactly once. The caller must then
  /// re-attach the store: chain.set_block_sink([&store](b, u) {
  /// store.append_block(b, u); }).
  chain::Blockchain take_chain();

  const RecoveryStats& recovery() const noexcept { return recovery_; }
  const StoreOptions& options() const noexcept { return options_; }
  std::uint64_t next_seq() const noexcept { return next_seq_; }
  std::uint64_t log_bytes() const noexcept { return log_.size_bytes(); }
  std::string log_path() const { return log_.path(); }

  /// Block-sink entry point: append one accepted block (undo present iff it
  /// connected directly at the tip) to the log.
  bool append_block(const chain::Block& block, const chain::BlockUndo* undo);

  /// Write a snapshot if `snapshot_interval` blocks were appended since the
  /// last one. Returns true if a snapshot was written.
  bool maybe_snapshot(const chain::Blockchain& chain);

  /// Unconditionally snapshot the chain, rotate the log (its records are
  /// now covered) and prune old snapshots.
  bool write_snapshot(const chain::Blockchain& chain);

  bool sync() { return log_.sync(); }

 private:
  ChainStore() = default;

  StoreOptions options_;
  BlockLog log_;
  std::optional<chain::Blockchain> chain_;  // until take_chain()
  RecoveryStats recovery_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t appends_since_snapshot_ = 0;
};

/// Path of the block log inside a store directory (chaos hooks shear its
/// tail while the owning node is down).
std::string log_file_path(const std::string& dir);

/// Serialize one log payload: kind | has_undo | block | undo.
util::Bytes encode_block_record(const chain::Block& block,
                                const chain::BlockUndo* undo);

/// Parse a log payload. std::nullopt on malformed bytes (CRC passed but the
/// content does not decode — treated as unrecoverable corruption).
struct DecodedBlockRecord {
  chain::Block block;
  std::optional<chain::BlockUndo> undo;
};
std::optional<DecodedBlockRecord> decode_block_record(util::ByteView payload);

}  // namespace bcwan::store

// Append-only, CRC-checksummed block log.
//
// On-disk layout (all integers little-endian):
//
//   file header:  8-byte magic "BCWANLOG" | u32 version
//   record:       u32 record magic | u64 seq | u32 payload_len
//                 | u32 crc32c(seq || payload) | payload bytes
//
// Records carry strictly increasing sequence numbers so replay can skip
// everything a chainstate snapshot already covers — including the case
// where the snapshot is *newer* than the log tail (snapshot written, then
// crash before further appends).
//
// Tail policy: an incomplete or CRC-corrupt record at the END of the file
// is a torn write from a crash — Scan reports kTornTail and open()
// truncates it. A corrupt record with valid records AFTER it is mid-file
// corruption the log cannot have produced by crashing; Scan reports
// kCorrupt and open() refuses rather than silently dropping history.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace bcwan::store {

inline constexpr char kLogMagic[8] = {'B', 'C', 'W', 'A', 'N', 'L', 'O', 'G'};
inline constexpr std::uint32_t kLogVersion = 1;
inline constexpr std::uint32_t kRecordMagic = 0x314B4C42u;  // "BLK1"
inline constexpr std::size_t kFileHeaderBytes = 12;
inline constexpr std::size_t kRecordHeaderBytes = 20;
/// Upper bound on a single record's payload; anything larger is treated as
/// corruption (a length field hit by a bit flip would otherwise make the
/// scanner skip gigabytes).
inline constexpr std::uint32_t kMaxPayloadBytes = 32u << 20;

struct LogRecord {
  std::uint64_t seq = 0;
  util::Bytes payload;
};

enum class ScanStatus {
  kOk,         // clean end of file
  kTornTail,   // torn/incomplete tail record; valid_bytes = truncation point
  kCorrupt,    // corrupt record followed by valid ones — refuse to open
  kBadHeader,  // missing/foreign file header or version mismatch
};

const char* scan_status_name(ScanStatus s);

struct ScanResult {
  ScanStatus status = ScanStatus::kOk;
  std::vector<LogRecord> records;
  /// Offset one past the last valid record (== file size when kOk).
  std::uint64_t valid_bytes = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t truncated_bytes() const { return file_bytes - valid_bytes; }
};

/// Parse a log image in memory. Never touches the filesystem — the unit
/// tests drive every torn-tail offset through this directly.
ScanResult scan_log(util::ByteView data);

/// Zero-copy scan: record payloads stay in the owned file image and replay
/// decodes views straight out of it. Copying every payload into its own
/// Bytes was a measurable slice of the recovery profile.
struct RecordBounds {
  std::uint64_t seq = 0;
  std::uint64_t offset = 0;  // payload offset within the image
  std::uint32_t len = 0;
};

struct ScanImage {
  ScanStatus status = ScanStatus::kOk;
  util::Bytes image;  // raw file bytes (pre-truncation)
  std::vector<RecordBounds> records;
  /// Offset one past the last valid record (== file size when kOk).
  std::uint64_t valid_bytes = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t truncated_bytes() const { return file_bytes - valid_bytes; }
  util::ByteView payload(const RecordBounds& r) const {
    return util::ByteView(image).subspan(static_cast<std::size_t>(r.offset),
                                         r.len);
  }
};

/// Bounds-only scan over `data` (which the caller keeps alive).
ScanImage scan_log_bounds(util::ByteView data);

class BlockLog {
 public:
  BlockLog() = default;
  ~BlockLog();
  BlockLog(const BlockLog&) = delete;
  BlockLog& operator=(const BlockLog&) = delete;
  BlockLog(BlockLog&& other) noexcept;
  BlockLog& operator=(BlockLog&& other) noexcept;

  /// Open (creating an empty log if absent), scan existing records into
  /// `scan`, and truncate a torn tail in place. Returns false — leaving the
  /// log closed — on kCorrupt, kBadHeader or I/O failure.
  bool open(const std::string& path, ScanResult& scan, std::string* error);

  /// Zero-copy variant: `scan.image` owns the file bytes and the records
  /// are bounds into it. The store's replay path uses this.
  bool open(const std::string& path, ScanImage& scan, std::string* error);

  bool is_open() const noexcept { return file_ != nullptr; }
  const std::string& path() const noexcept { return path_; }
  std::uint64_t size_bytes() const noexcept { return offset_; }

  /// Append one record. When `sync` is set the record is fsync'd before
  /// returning (crash durability; benches turn it off).
  bool append(std::uint64_t seq, util::ByteView payload, bool sync);

  /// fsync the log file.
  bool sync();

  /// Drop every record (the chainstate snapshot now covers them) and reset
  /// to an empty log with a fresh header.
  bool reset();

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t offset_ = 0;
};

/// Chaos/test hook: shear `bytes` off the end of the log file, emulating a
/// torn write that persisted only a prefix of the final record. Returns the
/// number of bytes actually removed.
std::uint64_t tear_log_tail(const std::string& path, std::uint64_t bytes);

/// Chaos/test hook: XOR one byte at `offset` (mid-file corruption).
bool flip_log_byte(const std::string& path, std::uint64_t offset);

}  // namespace bcwan::store

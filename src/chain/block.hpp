// Blocks, headers, merkle trees and proof-of-work checks.
#pragma once

#include <optional>
#include <vector>

#include "chain/transaction.hpp"

namespace bcwan::chain {

struct BlockHeader {
  std::uint32_t version = 1;
  Hash256 prev_block{};
  Hash256 merkle_root{};
  /// Simulation timestamp (virtual seconds since genesis).
  std::uint64_t time = 0;
  /// Required leading zero bits (simplified difficulty encoding).
  std::uint32_t target_zero_bits = 0;
  std::uint32_t nonce = 0;
  /// Proof-of-stake fields (empty under proof-of-work): SEC1 proposer key
  /// and its ECDSA signature over the header with this field blanked.
  util::Bytes proposer_pubkey;
  util::Bytes pos_signature;

  util::Bytes serialize() const;
  Hash256 hash() const;

  friend bool operator==(const BlockHeader&, const BlockHeader&) = default;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;

  util::Bytes serialize() const;
  /// `compute_txids = false` leaves every transaction's txid cache empty —
  /// for callers (the store's trusted log decoder) that seed recorded ids
  /// instead of re-hashing.
  static std::optional<Block> deserialize(util::ByteView data,
                                          bool compute_txids = true);

  Hash256 hash() const { return header.hash(); }

  friend bool operator==(const Block&, const Block&) = default;
};

/// Merkle root over txids (Bitcoin's duplicate-last-on-odd-level scheme).
/// Empty input yields the zero hash.
///
/// Each level is hashed through the batched sha256d64 kernel (pairs of
/// 32-byte nodes are exactly its 64-byte input shape). `threads` > 1 splits
/// large levels across the shared thread pool; the result is identical for
/// any thread count.
Hash256 merkle_root(const std::vector<Hash256>& leaves, unsigned threads = 0);

Hash256 compute_merkle_root(const std::vector<Transaction>& txs,
                            unsigned threads = 0);

/// True if `hash` has at least `zero_bits` leading zero bits.
bool hash_meets_target(const Hash256& hash, unsigned zero_bits) noexcept;

/// Grind the nonce until the header meets its own target. Returns false if
/// the 32-bit nonce space is exhausted (practically impossible at simulation
/// difficulty).
bool solve_pow(BlockHeader& header);

}  // namespace bcwan::chain

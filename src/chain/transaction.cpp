#include "chain/transaction.hpp"

#include <algorithm>
#include <cstring>

#include "chain/sigcache.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/serial.hpp"

namespace bcwan::chain {

std::string hash_hex(const Hash256& h) {
  return util::to_hex(util::ByteView(h.data(), h.size()));
}

OutPoint coinbase_prevout() { return OutPoint{Hash256{}, kSequenceFinal}; }

namespace {

void write_outpoint(util::Writer& w, const OutPoint& o) {
  w.bytes(util::ByteView(o.txid.data(), o.txid.size()));
  w.u32(o.index);
}

OutPoint read_outpoint(util::Reader& r) {
  OutPoint o;
  const util::Bytes raw = r.bytes(32);
  std::memcpy(o.txid.data(), raw.data(), 32);
  o.index = r.u32();
  return o;
}

void write_tx(util::Writer& w, const Transaction& tx) {
  w.u32(tx.version);
  w.varint(tx.vin.size());
  for (const TxIn& in : tx.vin) {
    write_outpoint(w, in.prevout);
    w.var_bytes(in.script_sig.bytes());
    w.u32(in.sequence);
  }
  w.varint(tx.vout.size());
  for (const TxOut& out : tx.vout) {
    w.u64(static_cast<std::uint64_t>(out.value));
    w.var_bytes(out.script_pubkey.bytes());
  }
  w.u32(tx.locktime);
}

}  // namespace

Transaction::Transaction(const Transaction& other)
    : version(other.version), vin(other.vin), vout(other.vout),
      locktime(other.locktime) {
  if (other.txid_state_.load(std::memory_order_acquire) == 2) {
    cached_txid_ = other.cached_txid_;
    txid_state_.store(2, std::memory_order_relaxed);
  }
}

Transaction::Transaction(Transaction&& other) noexcept
    : version(other.version), vin(std::move(other.vin)),
      vout(std::move(other.vout)), locktime(other.locktime) {
  if (other.txid_state_.load(std::memory_order_acquire) == 2) {
    cached_txid_ = other.cached_txid_;
    txid_state_.store(2, std::memory_order_relaxed);
  }
  // The moved-from shell no longer serializes to the cached id.
  other.invalidate_txid();
}

Transaction& Transaction::operator=(const Transaction& other) {
  if (this == &other) return *this;
  version = other.version;
  vin = other.vin;
  vout = other.vout;
  locktime = other.locktime;
  if (other.txid_state_.load(std::memory_order_acquire) == 2) {
    cached_txid_ = other.cached_txid_;
    txid_state_.store(2, std::memory_order_relaxed);
  } else {
    invalidate_txid();
  }
  return *this;
}

Transaction& Transaction::operator=(Transaction&& other) noexcept {
  if (this == &other) return *this;
  version = other.version;
  vin = std::move(other.vin);
  vout = std::move(other.vout);
  locktime = other.locktime;
  if (other.txid_state_.load(std::memory_order_acquire) == 2) {
    cached_txid_ = other.cached_txid_;
    txid_state_.store(2, std::memory_order_relaxed);
  } else {
    invalidate_txid();
  }
  other.invalidate_txid();
  return *this;
}

util::Bytes Transaction::serialize() const {
  util::Writer w;
  write_tx(w, *this);
  return w.take();
}

std::optional<Transaction> Transaction::deserialize(util::ByteView data,
                                                    bool compute_txid) {
  try {
    util::Reader r(data);
    Transaction tx;
    tx.version = r.u32();
    const std::uint64_t nin = r.varint();
    // An input is ≥ 41 bytes on the wire; bound the reserve so a corrupt
    // count cannot balloon memory before the parse fails.
    tx.vin.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(nin, r.remaining() / 41 + 1)));
    for (std::uint64_t i = 0; i < nin; ++i) {
      TxIn in;
      in.prevout = read_outpoint(r);
      in.script_sig = script::Script(r.var_bytes());
      in.sequence = r.u32();
      tx.vin.push_back(std::move(in));
    }
    const std::uint64_t nout = r.varint();
    tx.vout.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(nout, r.remaining() / 13 + 1)));
    for (std::uint64_t i = 0; i < nout; ++i) {
      TxOut out;
      out.value = static_cast<Amount>(r.u64());
      out.script_pubkey = script::Script(r.var_bytes());
      tx.vout.push_back(std::move(out));
    }
    tx.locktime = r.u32();
    r.expect_done();
    // Canonical varints + expect_done guarantee serialize(tx) == data, so
    // the wire bytes already in hand ARE the txid preimage — seed the cache
    // and the gossip path never re-serializes.
    if (compute_txid) {
      tx.cached_txid_ = crypto::sha256d(data);
      tx.txid_state_.store(2, std::memory_order_relaxed);
    }
    return tx;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

Hash256 Transaction::txid() const {
  if (txid_state_.load(std::memory_order_acquire) == 2) return cached_txid_;
  const Hash256 h = crypto::sha256d(serialize());
  std::uint8_t expected = 0;
  if (txid_state_.compare_exchange_strong(expected, 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
    cached_txid_ = h;
    txid_state_.store(2, std::memory_order_release);
  }
  return h;
}

Amount Transaction::total_output() const {
  Amount total = 0;
  for (const TxOut& out : vout) total += out.value;
  return total;
}

util::Bytes signature_hash_message(const Transaction& tx,
                                   std::size_t input_index,
                                   const script::Script& script_pubkey_spent) {
  util::Writer w;
  w.u32(tx.version);
  w.varint(tx.vin.size());
  for (std::size_t i = 0; i < tx.vin.size(); ++i) {
    write_outpoint(w, tx.vin[i].prevout);
    if (i == input_index) {
      w.var_bytes(script_pubkey_spent.bytes());
    } else {
      w.var_bytes({});
    }
    w.u32(tx.vin[i].sequence);
  }
  w.varint(tx.vout.size());
  for (const TxOut& out : tx.vout) {
    w.u64(static_cast<std::uint64_t>(out.value));
    w.var_bytes(out.script_pubkey.bytes());
  }
  w.u32(tx.locktime);
  w.u32(static_cast<std::uint32_t>(input_index));
  w.u8(0x01);  // SIGHASH_ALL tag
  return w.take();
}

PrecomputedTxData::PrecomputedTxData(const Transaction& tx) {
  util::Writer w;
  std::vector<std::size_t> slot_start;
  slot_start.reserve(tx.vin.size());
  slot_end_.reserve(tx.vin.size());
  w.u32(tx.version);
  w.varint(tx.vin.size());
  for (const TxIn& in : tx.vin) {
    write_outpoint(w, in.prevout);
    slot_start.push_back(w.data().size());
    w.var_bytes({});  // blank scriptSig: one 0x00 length byte
    slot_end_.push_back(w.data().size());
    w.u32(in.sequence);
  }
  w.varint(tx.vout.size());
  for (const TxOut& out : tx.vout) {
    w.u64(static_cast<std::uint64_t>(out.value));
    w.var_bytes(out.script_pubkey.bytes());
  }
  w.u32(tx.locktime);
  template_ = w.take();

  // One rolling context absorbs the template left to right; the snapshot
  // taken just before input i's slot is i's prefix midstate.
  crypto::Sha256 rolling;
  std::size_t absorbed = 0;
  prefixes_.reserve(slot_start.size());
  for (const std::size_t start : slot_start) {
    rolling.update(
        util::ByteView(template_.data() + absorbed, start - absorbed));
    absorbed = start;
    prefixes_.push_back(rolling);
  }
}

crypto::Digest256 PrecomputedTxData::sighash(
    std::size_t input_index, const script::Script& script_pubkey_spent) const {
  crypto::Sha256 h = prefixes_[input_index];  // resume at this input's slot
  util::Writer spk;
  spk.var_bytes(script_pubkey_spent.bytes());
  h.update(spk.data());
  h.update(util::ByteView(template_.data() + slot_end_[input_index],
                          template_.size() - slot_end_[input_index]));
  std::uint8_t trailer[5];  // u32 input index (LE) + SIGHASH_ALL tag
  const auto idx = static_cast<std::uint32_t>(input_index);
  trailer[0] = static_cast<std::uint8_t>(idx);
  trailer[1] = static_cast<std::uint8_t>(idx >> 8);
  trailer[2] = static_cast<std::uint8_t>(idx >> 16);
  trailer[3] = static_cast<std::uint8_t>(idx >> 24);
  trailer[4] = 0x01;
  h.update(util::ByteView(trailer, sizeof trailer));
  const crypto::Digest256 first = h.finalize();
  return crypto::sha256(util::ByteView(first.data(), first.size()));
}

bool TxSignatureChecker::check_sig(util::ByteView sig,
                                   util::ByteView pubkey) const {
  // The SHA-256d sighash digest — from midstates when the caller supplied a
  // PrecomputedTxData, otherwise by materializing the message once.
  const crypto::Digest256 digest =
      precomp_ ? precomp_->sighash(input_index_, script_pubkey_spent_)
               : crypto::sha256d(signature_hash_message(
                     tx_, input_index_, script_pubkey_spent_));

  // Salted signature cache (Bitcoin has carried one since 0.7): a
  // federation daemon re-verifies the same (msg, sig, pubkey) triple once
  // per gossip hop, and a block re-verifies what the mempool already
  // checked. A hit also skips pubkey decode + on-curve — the cached entry
  // was only ever written after the full check passed on identical bytes.
  const Hash256 key = sig_cache().key(
      {util::ByteView(digest.data(), digest.size()), pubkey, sig});
  if (sig_cache().contains(key)) {
    if (telemetry::enabled())
      telemetry::registry()
          .counter("bcwan_chain_sigverify_total", "result", "cached",
                   "Signature checks by outcome: sigcache hits vs cold "
                   "ECDSA verifications")
          .add(1);
    return true;
  }

  const auto decoded_sig = crypto::EcdsaSignature::deserialize(sig);
  if (!decoded_sig) return false;
  const auto decoded_pub = crypto::ec_pubkey_decode(pubkey);
  if (!decoded_pub) return false;

  telemetry::Histogram* cold_hist = nullptr;
  if (telemetry::enabled())
    cold_hist = &telemetry::registry().histogram(
        "bcwan_chain_sigverify_cold_seconds",
        "Wall-clock time of one cold (cache-miss) ECDSA verification");
  bool valid = false;
  {
    telemetry::Span span("chain.sigverify_cold", cold_hist);
    valid = crypto::ecdsa_verify_digest(*decoded_pub, digest, *decoded_sig);
  }
  if (telemetry::enabled())
    telemetry::registry()
        .counter("bcwan_chain_sigverify_total", "result",
                 valid ? "cold_valid" : "cold_invalid",
                 "Signature checks by outcome: sigcache hits vs cold "
                 "ECDSA verifications")
        .add(1);
  if (valid) sig_cache().insert(key);
  return valid;
}

}  // namespace bcwan::chain

#include "chain/transaction.hpp"

#include <cstring>

#include "chain/sigcache.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"
#include "util/serial.hpp"

namespace bcwan::chain {

std::string hash_hex(const Hash256& h) {
  return util::to_hex(util::ByteView(h.data(), h.size()));
}

OutPoint coinbase_prevout() { return OutPoint{Hash256{}, kSequenceFinal}; }

namespace {

void write_outpoint(util::Writer& w, const OutPoint& o) {
  w.bytes(util::ByteView(o.txid.data(), o.txid.size()));
  w.u32(o.index);
}

OutPoint read_outpoint(util::Reader& r) {
  OutPoint o;
  const util::Bytes raw = r.bytes(32);
  std::memcpy(o.txid.data(), raw.data(), 32);
  o.index = r.u32();
  return o;
}

void write_tx(util::Writer& w, const Transaction& tx) {
  w.u32(tx.version);
  w.varint(tx.vin.size());
  for (const TxIn& in : tx.vin) {
    write_outpoint(w, in.prevout);
    w.var_bytes(in.script_sig.bytes());
    w.u32(in.sequence);
  }
  w.varint(tx.vout.size());
  for (const TxOut& out : tx.vout) {
    w.u64(static_cast<std::uint64_t>(out.value));
    w.var_bytes(out.script_pubkey.bytes());
  }
  w.u32(tx.locktime);
}

}  // namespace

util::Bytes Transaction::serialize() const {
  util::Writer w;
  write_tx(w, *this);
  return w.take();
}

std::optional<Transaction> Transaction::deserialize(util::ByteView data) {
  try {
    util::Reader r(data);
    Transaction tx;
    tx.version = r.u32();
    const std::uint64_t nin = r.varint();
    for (std::uint64_t i = 0; i < nin; ++i) {
      TxIn in;
      in.prevout = read_outpoint(r);
      in.script_sig = script::Script(r.var_bytes());
      in.sequence = r.u32();
      tx.vin.push_back(std::move(in));
    }
    const std::uint64_t nout = r.varint();
    for (std::uint64_t i = 0; i < nout; ++i) {
      TxOut out;
      out.value = static_cast<Amount>(r.u64());
      out.script_pubkey = script::Script(r.var_bytes());
      tx.vout.push_back(std::move(out));
    }
    tx.locktime = r.u32();
    r.expect_done();
    return tx;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

Hash256 Transaction::txid() const { return crypto::sha256d(serialize()); }

Amount Transaction::total_output() const {
  Amount total = 0;
  for (const TxOut& out : vout) total += out.value;
  return total;
}

util::Bytes signature_hash_message(const Transaction& tx,
                                   std::size_t input_index,
                                   const script::Script& script_pubkey_spent) {
  util::Writer w;
  w.u32(tx.version);
  w.varint(tx.vin.size());
  for (std::size_t i = 0; i < tx.vin.size(); ++i) {
    write_outpoint(w, tx.vin[i].prevout);
    if (i == input_index) {
      w.var_bytes(script_pubkey_spent.bytes());
    } else {
      w.var_bytes({});
    }
    w.u32(tx.vin[i].sequence);
  }
  w.varint(tx.vout.size());
  for (const TxOut& out : tx.vout) {
    w.u64(static_cast<std::uint64_t>(out.value));
    w.var_bytes(out.script_pubkey.bytes());
  }
  w.u32(tx.locktime);
  w.u32(static_cast<std::uint32_t>(input_index));
  w.u8(0x01);  // SIGHASH_ALL tag
  return w.take();
}

bool TxSignatureChecker::check_sig(util::ByteView sig,
                                   util::ByteView pubkey) const {
  const util::Bytes message =
      signature_hash_message(tx_, input_index_, script_pubkey_spent_);
  const crypto::Digest256 digest = crypto::sha256(message);

  // Salted signature cache (Bitcoin has carried one since 0.7): a
  // federation daemon re-verifies the same (msg, sig, pubkey) triple once
  // per gossip hop, and a block re-verifies what the mempool already
  // checked. A hit also skips pubkey decode + on-curve — the cached entry
  // was only ever written after the full check passed on identical bytes.
  const Hash256 key = sig_cache().key(
      {util::ByteView(digest.data(), digest.size()), pubkey, sig});
  if (sig_cache().contains(key)) return true;

  const auto decoded_sig = crypto::EcdsaSignature::deserialize(sig);
  if (!decoded_sig) return false;
  const auto decoded_pub = crypto::ec_pubkey_decode(pubkey);
  if (!decoded_pub) return false;
  const bool valid = crypto::ecdsa_verify(*decoded_pub, message, *decoded_sig);
  if (valid) sig_cache().insert(key);
  return valid;
}

}  // namespace bcwan::chain

// Block assembly and proof-of-work.
//
// In BcWAN's evaluation mining runs only on the master node ("An AWS EC2
// instance is used as a master node only to 1) bootstrap the nodes and
// 2) mine blocks. Mining is disabled on the PlanetLab nodes" — §5.2); the
// simulator does the same, scheduling mine() on a Poisson clock at the
// master host.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "chain/blockchain.hpp"
#include "chain/mempool.hpp"
#include "chain/pos.hpp"
#include "script/templates.hpp"

namespace bcwan::chain {

class Miner {
 public:
  Miner(const ChainParams& params, const script::PubKeyHash& reward_dest)
      : params_(params), reward_dest_(reward_dest) {}

  /// Proof-of-stake identity: required before mine() under kProofOfStake.
  void set_pos_key(crypto::EcKeyPair key) { pos_key_ = std::move(key); }

  /// Under kProofOfStake: is this miner's key the slot leader for the next
  /// block on `chain`? Always true under kProofOfWork.
  bool is_scheduled(const Blockchain& chain) const;

  /// Build a candidate block on the current tip from mempool contents.
  /// `time` stamps the header (virtual seconds). Fees are verified against
  /// the chainstate, not trusted from the pool.
  Block assemble(const Blockchain& chain, const Mempool& pool,
                 std::uint64_t time) const;

  /// assemble() + the consensus step: grind the nonce (PoW) or sign the
  /// header as slot leader (PoS — throws if this miner isn't scheduled).
  Block mine(const Blockchain& chain, const Mempool& pool,
             std::uint64_t time) const;

  /// Adversarial censorship: transactions for which `keep` returns false
  /// are silently excluded from assembled blocks (they stay in the
  /// mempool — censorship delays, it cannot rewrite). nullptr uninstalls.
  void set_tx_filter(std::function<bool(const Transaction&)> keep) {
    tx_filter_ = std::move(keep);
  }
  std::uint64_t txs_censored() const noexcept { return censored_; }

 private:
  const ChainParams& params_;
  script::PubKeyHash reward_dest_;
  std::optional<crypto::EcKeyPair> pos_key_;
  std::function<bool(const Transaction&)> tx_filter_;
  mutable std::uint64_t censored_ = 0;
};

}  // namespace bcwan::chain

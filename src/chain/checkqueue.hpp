// Parallel script-check queue for block connection.
//
// connect_block batches every input-script check of a block into
// ScriptChecks, then run_script_checks executes them across the shared
// work-stealing pool (util/threadpool). Failure reporting is deterministic:
// whatever order the workers finish in, the reported failure is the one
// with the lowest (tx index, input index) — exactly the check the serial
// path would have tripped on first — so error codes are identical between
// the serial and parallel paths. Workers skip any check that can no longer
// win (its index is above the current best failure), which bounds wasted
// work once a block is known bad.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/transaction.hpp"
#include "script/interpreter.hpp"
#include "script/script.hpp"

namespace bcwan::chain {

/// One deferred input-script execution. Holds its own copy of the spent
/// scriptPubKey (the coin is consumed from the UTXO set before the check
/// runs); `tx` and `precomp` point into state owned by the block-connection
/// frame, which outlives the batch. `precomp`, when set, carries the
/// transaction's sighash midstates so workers skip per-input
/// re-serialization.
struct ScriptCheck {
  const Transaction* tx = nullptr;
  std::uint32_t tx_index = 0;
  std::uint32_t input_index = 0;
  script::Script script_pubkey;
  const PrecomputedTxData* precomp = nullptr;

  script::ScriptError run() const;
};

struct ScriptCheckFailure {
  std::size_t tx_index = 0;
  std::size_t input_index = 0;
  script::ScriptError error = script::ScriptError::kOk;
};

/// Execute all checks; `threads` <= 1 runs serially in order (first failure
/// wins — which is also the lowest index, since connect_block queues checks
/// in block order). With N > 1, N-1 pool workers plus the calling thread
/// execute chunks concurrently and the lowest-index failure is returned.
std::optional<ScriptCheckFailure> run_script_checks(
    const std::vector<ScriptCheck>& checks, unsigned threads);

}  // namespace bcwan::chain

// Transactions: Bitcoin-0.10-shaped inputs/outputs with script locks.
//
// Every BcWAN on-chain artifact is one of these: directory announcements
// (OP_RETURN outputs), fair-exchange offers (Listing-1 outputs), gateway
// redeems (scriptSigs revealing eSk), payments, and coinbases.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "chain/params.hpp"
#include "crypto/sha256.hpp"
#include "script/interpreter.hpp"
#include "script/script.hpp"
#include "util/bytes.hpp"

namespace bcwan::chain {

/// 32-byte id (double SHA-256 of the serialized object).
using Hash256 = crypto::Digest256;

std::string hash_hex(const Hash256& h);

struct Hash256Hasher {
  std::size_t operator()(const Hash256& h) const noexcept {
    std::size_t out;
    static_assert(sizeof out <= 32);
    std::memcpy(&out, h.data(), sizeof out);
    return out;
  }
};

/// Reference to a transaction output.
struct OutPoint {
  Hash256 txid{};
  std::uint32_t index = 0;

  friend bool operator==(const OutPoint&, const OutPoint&) = default;
};

struct OutPointHasher {
  std::size_t operator()(const OutPoint& o) const noexcept {
    // splitmix64 finalization over (txid word ^ index): the txid word alone
    // is uniform, but adjacent outputs of the same transaction differ only
    // in `index`, and a shift-xor mix sends them to adjacent buckets.
    std::uint64_t x = 0;
    static_assert(sizeof x <= 32);
    std::memcpy(&x, o.txid.data(), sizeof x);
    x ^= static_cast<std::uint64_t>(o.index) + 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// Sequence value that opts an input out of locktime semantics.
constexpr std::uint32_t kSequenceFinal = 0xffffffff;

struct TxIn {
  OutPoint prevout;
  script::Script script_sig;
  std::uint32_t sequence = kSequenceFinal;

  friend bool operator==(const TxIn&, const TxIn&) = default;
};

struct TxOut {
  Amount value = 0;
  script::Script script_pubkey;

  friend bool operator==(const TxOut&, const TxOut&) = default;
};

struct Transaction {
  std::uint32_t version = 1;
  std::vector<TxIn> vin;
  std::vector<TxOut> vout;
  /// Interpreted as a block height before which the tx cannot be mined.
  std::uint32_t locktime = 0;

  bool is_coinbase() const noexcept {
    return vin.size() == 1 && vin[0].prevout.txid == Hash256{} &&
           vin[0].prevout.index == kSequenceFinal;
  }

  util::Bytes serialize() const;
  static std::optional<Transaction> deserialize(util::ByteView data);

  /// Double SHA-256 of the serialization.
  Hash256 txid() const;

  Amount total_output() const;

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// Canonical coinbase prevout.
OutPoint coinbase_prevout();

/// The message that an input's ECDSA signature commits to (SIGHASH_ALL
/// semantics): the transaction with every scriptSig blanked except the
/// signed input's, which carries the scriptPubKey being spent, plus the
/// input index.
util::Bytes signature_hash_message(const Transaction& tx,
                                   std::size_t input_index,
                                   const script::Script& script_pubkey_spent);

/// script::SignatureChecker bound to a (transaction, input) pair.
class TxSignatureChecker : public script::SignatureChecker {
 public:
  TxSignatureChecker(const Transaction& tx, std::size_t input_index,
                     const script::Script& script_pubkey_spent)
      : tx_(tx), input_index_(input_index),
        script_pubkey_spent_(script_pubkey_spent) {}

  bool check_sig(util::ByteView sig, util::ByteView pubkey) const override;
  std::int64_t tx_locktime() const override { return tx_.locktime; }
  bool input_sequence_final() const override {
    return tx_.vin[input_index_].sequence == kSequenceFinal;
  }

 private:
  const Transaction& tx_;
  std::size_t input_index_;
  const script::Script& script_pubkey_spent_;
};

}  // namespace bcwan::chain

// Transactions: Bitcoin-0.10-shaped inputs/outputs with script locks.
//
// Every BcWAN on-chain artifact is one of these: directory announcements
// (OP_RETURN outputs), fair-exchange offers (Listing-1 outputs), gateway
// redeems (scriptSigs revealing eSk), payments, and coinbases.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "chain/params.hpp"
#include "crypto/sha256.hpp"
#include "script/interpreter.hpp"
#include "script/script.hpp"
#include "util/bytes.hpp"

namespace bcwan::chain {

/// 32-byte id (double SHA-256 of the serialized object).
using Hash256 = crypto::Digest256;

std::string hash_hex(const Hash256& h);

struct Hash256Hasher {
  std::size_t operator()(const Hash256& h) const noexcept {
    std::size_t out;
    static_assert(sizeof out <= 32);
    std::memcpy(&out, h.data(), sizeof out);
    return out;
  }
};

/// Reference to a transaction output.
struct OutPoint {
  Hash256 txid{};
  std::uint32_t index = 0;

  friend bool operator==(const OutPoint&, const OutPoint&) = default;
};

struct OutPointHasher {
  std::size_t operator()(const OutPoint& o) const noexcept {
    // splitmix64 finalization over (txid word ^ index): the txid word alone
    // is uniform, but adjacent outputs of the same transaction differ only
    // in `index`, and a shift-xor mix sends them to adjacent buckets.
    std::uint64_t x = 0;
    static_assert(sizeof x <= 32);
    std::memcpy(&x, o.txid.data(), sizeof x);
    x ^= static_cast<std::uint64_t>(o.index) + 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// Sequence value that opts an input out of locktime semantics.
constexpr std::uint32_t kSequenceFinal = 0xffffffff;

struct TxIn {
  OutPoint prevout;
  script::Script script_sig;
  std::uint32_t sequence = kSequenceFinal;

  friend bool operator==(const TxIn&, const TxIn&) = default;
};

struct TxOut {
  Amount value = 0;
  script::Script script_pubkey;

  friend bool operator==(const TxOut&, const TxOut&) = default;
};

struct Transaction {
  std::uint32_t version = 1;
  std::vector<TxIn> vin;
  std::vector<TxOut> vout;
  /// Interpreted as a block height before which the tx cannot be mined.
  std::uint32_t locktime = 0;

  Transaction() = default;
  Transaction(const Transaction& other);
  Transaction(Transaction&& other) noexcept;
  Transaction& operator=(const Transaction& other);
  Transaction& operator=(Transaction&& other) noexcept;

  bool is_coinbase() const noexcept {
    return vin.size() == 1 && vin[0].prevout.txid == Hash256{} &&
           vin[0].prevout.index == kSequenceFinal;
  }

  util::Bytes serialize() const;
  /// `compute_txid = false` skips seeding the txid cache from the wire
  /// bytes — for callers that already know the id (the store's trusted log
  /// records it) and will seed_txid() it, avoiding a SHA-256d per tx.
  static std::optional<Transaction> deserialize(util::ByteView data,
                                                bool compute_txid = true);

  /// Install a txid obtained from a trusted source (the CRC-protected
  /// block log) without hashing. The caller owns the claim that `id` is
  /// the double SHA-256 of this transaction's serialization.
  void seed_txid(const Hash256& id) const noexcept {
    cached_txid_ = id;
    txid_state_.store(2, std::memory_order_release);
  }

  /// Double SHA-256 of the serialization; memoized. The first call hashes
  /// and caches, later calls return the cached id. Concurrent readers are
  /// safe (the script-check workers hash the same block's transactions);
  /// mutation requires the same external synchronization the field vectors
  /// already do, plus an invalidate_txid() call.
  Hash256 txid() const;

  /// Drop the memoized txid. MUST be called after mutating any serialized
  /// field (version/vin/vout/locktime) on a transaction whose txid may
  /// already have been observed — a stale id is not just wrong, it can
  /// alias the script-exec and signature caches (keyed by txid) and skip
  /// validation of the mutated bytes.
  void invalidate_txid() const noexcept {
    txid_state_.store(0, std::memory_order_relaxed);
  }

  Amount total_output() const;

  /// Logical equality: serialized fields only, cache state ignored.
  friend bool operator==(const Transaction& a, const Transaction& b) {
    return a.version == b.version && a.locktime == b.locktime &&
           a.vin == b.vin && a.vout == b.vout;
  }

 private:
  // Lazy txid cache: 0 = empty, 1 = one thread is filling it, 2 = valid.
  // The CAS winner alone writes cached_txid_ and publishes with a release
  // store; losers return their locally computed copy. That keeps concurrent
  // first calls race-free without a lock in the hot path.
  mutable Hash256 cached_txid_{};
  mutable std::atomic<std::uint8_t> txid_state_{0};
};

/// Canonical coinbase prevout.
OutPoint coinbase_prevout();

/// The message that an input's ECDSA signature commits to (SIGHASH_ALL
/// semantics): the transaction with every scriptSig blanked except the
/// signed input's, which carries the scriptPubKey being spent, plus the
/// input index.
util::Bytes signature_hash_message(const Transaction& tx,
                                   std::size_t input_index,
                                   const script::Script& script_pubkey_spent);

/// Per-transaction sighash midstates: turns the O(inputs × tx-size)
/// re-serialization of signature_hash_message into O(tx-size + inputs ×
/// suffix) hashing.
///
/// The SIGHASH_ALL message for input i is the serialized transaction with
/// every scriptSig slot blanked except slot i, which carries the spent
/// scriptPubKey, followed by the input index and the 0x01 tag. All messages
/// for one transaction therefore share a template — the fully-blanked
/// serialization — and differ only in what sits in slot i and in the
/// trailer. We build that template once, record each slot's byte offset,
/// and snapshot a SHA-256 midstate over the template prefix ending just
/// before each slot. sighash(i, spk) resumes midstate i, absorbs the spent
/// script and the template suffix after slot i, appends the trailer, and
/// double-hashes — bit-identical to hashing the naive message.
///
/// Validity: the template blanks ALL scriptSigs, so signing input j (which
/// mutates tx.vin[j].script_sig) does not perturb any input's message —
/// one instance serves a whole wallet signing pass and a whole block's
/// script checks. Outputs/locktime/sequence mutations DO invalidate it.
class PrecomputedTxData {
 public:
  explicit PrecomputedTxData(const Transaction& tx);

  /// SHA-256d sighash digest for `input_index` spending
  /// `script_pubkey_spent` — exactly
  /// sha256d(signature_hash_message(tx, input_index, script_pubkey_spent)).
  crypto::Digest256 sighash(std::size_t input_index,
                            const script::Script& script_pubkey_spent) const;

  std::size_t input_count() const noexcept { return prefixes_.size(); }

 private:
  util::Bytes template_;                  // all-blank message, no trailer
  std::vector<std::size_t> slot_end_;     // offset just past input i's blank
  std::vector<crypto::Sha256> prefixes_;  // midstate up to input i's slot
};

/// script::SignatureChecker bound to a (transaction, input) pair. When a
/// PrecomputedTxData for the same transaction is supplied, sighashes come
/// from its midstates instead of re-serializing the transaction per input.
class TxSignatureChecker : public script::SignatureChecker {
 public:
  TxSignatureChecker(const Transaction& tx, std::size_t input_index,
                     const script::Script& script_pubkey_spent,
                     const PrecomputedTxData* precomp = nullptr)
      : tx_(tx), input_index_(input_index),
        script_pubkey_spent_(script_pubkey_spent), precomp_(precomp) {}

  bool check_sig(util::ByteView sig, util::ByteView pubkey) const override;
  std::int64_t tx_locktime() const override { return tx_.locktime; }
  bool input_sequence_final() const override {
    return tx_.vin[input_index_].sequence == kSequenceFinal;
  }

 private:
  const Transaction& tx_;
  std::size_t input_index_;
  const script::Script& script_pubkey_spent_;
  const PrecomputedTxData* precomp_;
};

}  // namespace bcwan::chain

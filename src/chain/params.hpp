// Chain parameters — the Multichain-style knobs the paper leans on (§5.1:
// "Multichain ... provides interesting features ... such as modifying the
// average mining time, the size of a block or the consensus").
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/time.hpp"

namespace bcwan::chain {

/// Monetary amounts in base units ("bits" of the federation's token).
using Amount = std::int64_t;

constexpr Amount kCoin = 100'000'000;

/// Block-election method. Proof-of-stake is the paper's §6 suggestion for
/// closing the gap to edge nodes (see chain/pos.hpp); the validator set
/// lives in `ChainParams::validators` when it is selected.
enum class ConsensusMode {
  kProofOfWork,
  kProofOfStake,
};

/// A proof-of-stake block producer: federation member identity + weight.
struct Validator {
  /// SEC1-encoded secp256k1 public key.
  util::Bytes pubkey;
  Amount stake = 0;

  friend bool operator==(const Validator&, const Validator&) = default;
};

struct ChainParams {
  /// Target average interval between blocks (drives the simulated miner's
  /// Poisson schedule; Multichain's default target is in this range).
  util::SimTime block_interval = 15 * util::kSecond;

  /// Required leading zero bits in a block hash. Kept low: in the
  /// simulation difficulty only has to make hashes well-formed, the mining
  /// *schedule* controls block arrival times.
  unsigned pow_zero_bits = 12;

  /// Coinbase subsidy per block.
  Amount block_reward = 50 * kCoin;

  /// Blocks before a coinbase output may be spent.
  int coinbase_maturity = 10;

  /// Upper bound on serialized block size.
  std::size_t max_block_size = 1'000'000;

  /// Upper bound on a single transaction.
  std::size_t max_tx_size = 100'000;

  /// Largest OP_RETURN payload accepted into blocks (Multichain makes this
  /// configurable; Bitcoin 0.10 used 40 bytes, the directory needs more).
  std::size_t max_op_return_size = 256;

  /// Cap on total supply for sanity checks.
  Amount max_money = 21'000'000 * kCoin;

  /// Minimum relay fee per transaction (flat, simulation-scale).
  Amount min_tx_fee = 100;

  /// Threads used for block script verification (0 or 1 = serial; N > 1
  /// runs N-1 pool workers plus the connecting thread via chain/checkqueue).
  unsigned script_check_threads = 0;

  /// Block election. Under kProofOfStake, `validators` must be non-empty
  /// and PoW checks are replaced by the slot-leader schedule of
  /// chain/pos.hpp.
  ConsensusMode consensus = ConsensusMode::kProofOfWork;
  std::vector<Validator> validators;

  /// Multichain-style mining permission: when non-empty, a block is only
  /// valid if its coinbase pays one of these pubkey hashes (Multichain's
  /// "grant mine" restricted to federation members — §4's "parties that
  /// don't participate to the network aren't able to take advantage").
  /// Stored as raw 20-byte HASH160s to keep this header script-agnostic.
  std::vector<util::Bytes> permitted_miners;

  bool miner_permitted(util::ByteView pkh) const {
    if (permitted_miners.empty()) return true;
    for (const auto& allowed : permitted_miners) {
      if (allowed.size() == pkh.size() &&
          std::equal(allowed.begin(), allowed.end(), pkh.begin())) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace bcwan::chain

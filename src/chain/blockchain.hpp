// Chain manager: block storage, longest-chain selection, UTXO tracking and
// reorganisation. Every gateway daemon holds one of these; the directory
// and the fair-exchange watcher read through it.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/block.hpp"
#include "chain/delta.hpp"
#include "chain/params.hpp"
#include "chain/utxo.hpp"
#include "chain/validation.hpp"

namespace bcwan::chain {

/// Deterministic genesis block for a federation (no PoW requirement).
Block make_genesis(const ChainParams& params);

enum class AcceptBlockResult {
  kConnected,      // extended the active chain
  kReorganized,    // became the new tip via reorg
  kSideChain,      // stored, not the best chain
  kOrphan,         // parent unknown; stored for later
  kDuplicate,
  kInvalid,
};

std::string accept_block_result_name(AcceptBlockResult r);

class Blockchain {
 public:
  explicit Blockchain(const ChainParams& params);

  const ChainParams& params() const noexcept { return params_; }

  /// Height of the tip (genesis = 0).
  int height() const noexcept { return static_cast<int>(active_.size()) - 1; }
  Hash256 tip_hash() const { return active_.back(); }
  const UtxoSet& utxo() const noexcept { return utxo_; }

  /// Validate and store; connects/reorganises as needed. Orphans are kept
  /// and connected automatically when their parent arrives.
  AcceptBlockResult accept_block(const Block& block);

  /// Trusted store-recovery path: the same acceptance/reorg state machine
  /// as accept_block, but structural checks, PoS election and script
  /// execution are skipped — every replayed block passed full validation
  /// before it reached the CRC-protected log. A logged `undo` lets a plain
  /// tip extension skip validation entirely and re-apply the recorded UTXO
  /// delta. The block sink never fires during replay.
  AcceptBlockResult replay_block(const Block& block,
                                 const BlockUndo* undo = nullptr);

  /// Move-aware replay fast path for the store's parallel decoder: the
  /// block (hash precomputed during decode) and its undo are consumed
  /// instead of copied. Identical state machine to replay_block above.
  AcceptBlockResult replay_block(Block&& block, const Hash256& hash,
                                 BlockUndo* undo);

  /// Pre-size the block map, tx index and active chain before a bulk
  /// replay (the store counts records and transactions up front; rehashing
  /// mid-replay is pure waste).
  void reserve_for_replay(std::size_t blocks, std::size_t txs);

  /// Observer invoked whenever a block is newly stored (connected, reorg
  /// trigger or side-chain — not still-unparented orphans), before any
  /// orphan descendants are processed, so log order preserves
  /// parent-before-child. `undo` is non-null exactly when the block
  /// connected directly at the tip; the store appends it to the block log
  /// so replay can skip validation for the common case.
  using BlockSink = std::function<void(const Block&, const BlockUndo*)>;
  void set_block_sink(BlockSink sink) { block_sink_ = std::move(sink); }

  /// Undo record of an active-chain block; nullptr for side-chain or
  /// unknown blocks (their undo is cleared on disconnect).
  const BlockUndo* undo_for(const Hash256& hash) const;

  /// Digest over (height, tip hash, UTXO set): two chainstates hash equal
  /// iff they agree on the active chain tip and every spendable coin. The
  /// crash-recovery gates compare this across restarts.
  Hash256 state_hash() const;

  /// Full chainstate dump for snapshots: every stored block with height
  /// and undo, the active chain, and the UTXO set. Heavier than
  /// export_chain() but restore_state() needs no re-validation.
  ///
  /// `undo_keep_depth >= 0` prunes spent-coin undo records of active
  /// blocks buried deeper than that many blocks below the tip: their undo
  /// serializes empty with a pruned flag, and a chain restored from the
  /// dump refuses reorganizations that would have to disconnect past them
  /// (kSideChain instead of a reorg). -1 keeps everything.
  util::Bytes serialize_state(int undo_keep_depth = -1) const;

  /// Rebuild from a serialize_state() dump. std::nullopt if the stream is
  /// malformed or internally inconsistent (wrong genesis, dangling active
  /// hash, height mismatch). No validation beyond structural consistency —
  /// snapshot integrity is the store's CRC's job.
  static std::optional<Blockchain> restore_state(const ChainParams& params,
                                                 util::ByteView data);

  // -- Incremental snapshots (the store's base + delta chain). --

  /// Net state change since `anchor_tip`/`anchor_height` (the tip at the
  /// previous snapshot element). `pending` lists every block stored since
  /// then, in storage order. Consumes the UTXO journal window — the caller
  /// must have called utxo_journal_begin() at the previous element.
  /// std::nullopt (journal window preserved-as-taken, caller must fall
  /// back to a full base) when the anchor is unknown or journaling is off.
  std::optional<StateDelta> collect_state_delta(
      const Hash256& anchor_tip, int anchor_height,
      const std::vector<Hash256>& pending);

  /// Apply a delta on top of the exact state it was collected against.
  /// False on any structural inconsistency — the chain may then be
  /// half-mutated and must be discarded (the store reassembles from the
  /// base without the bad delta).
  bool apply_state_delta(const StateDelta& delta);

  /// Open a UTXO journal window so the next collect_state_delta() sees net
  /// coin changes (see UtxoSet::begin_journal).
  void utxo_journal_begin() { utxo_.begin_journal(); }

  /// Clear in-memory undo data of active blocks buried deeper than
  /// `keep_depth` below the tip (marking them pruned). Monotone and
  /// incremental: each call only walks heights not already pruned.
  /// Returns the number of blocks newly pruned.
  std::size_t prune_undo(int keep_depth);

  /// True when the active block at `height` carries a pruned (absent)
  /// undo record — a reorg cannot disconnect past it.
  bool undo_pruned_at(int height) const;

  /// Fork height of the most recent successful reorganization: the highest
  /// block common to the old and new active chains. -1 until the first
  /// reorg. Chain-derived indexes (the gateway directory) unwind to this
  /// height instead of rebuilding from scratch.
  int last_fork_height() const noexcept { return last_fork_height_; }

  bool have_block(const Hash256& hash) const {
    return blocks_.find(hash) != blocks_.end();
  }
  std::optional<Block> get_block(const Hash256& hash) const;
  /// Block at an active-chain height.
  std::optional<Block> block_at(int height) const;

  /// Active-chain hashes from genesis to tip.
  const std::vector<Hash256>& active_chain() const noexcept { return active_; }

  /// True if the tx is confirmed in the active chain; returns depth
  /// (1 = in tip block) via out param.
  bool tx_confirmations(const Hash256& txid, int& confirmations) const;

  /// Scan the most recent `depth` blocks of the active chain, newest first.
  /// The callback receives each transaction with its block height.
  void scan_recent(
      int depth,
      const std::function<void(const Transaction&, int height)>& visit) const;

  /// The validation failure recorded for the last kInvalid result.
  const BlockValidationResult& last_failure() const noexcept {
    return last_failure_;
  }

  /// Non-coinbase transactions disconnected by the most recent reorg, in
  /// dependency order (ascending block height, in-block order preserved).
  /// The caller (the node) re-accepts them into its mempool so an orphaned
  /// tx chain — e.g. an offer spending an orphaned announcement's change —
  /// is re-mined instead of vanishing. Moves the list out; empty until the
  /// next reorg.
  std::vector<Transaction> take_disconnected_txs() {
    return std::exchange(disconnected_txs_, {});
  }

  /// Serialize the active chain (blocks above genesis) for persistence or
  /// for bootstrapping a new federation member out-of-band.
  util::Bytes export_chain() const;

  /// Rebuild a chain from an export, re-validating every block under
  /// `params`. std::nullopt if the stream is malformed or any block fails.
  static std::optional<Blockchain> import_chain(const ChainParams& params,
                                                util::ByteView data);

 private:
  struct StoredBlock {
    Block block;
    int height = 0;
    // Undo data exists only while the block is on the active chain.
    BlockUndo undo;
    // The undo was pruned (serialize_state/prune_undo beyond reorg depth);
    // this block can never be disconnected again.
    bool undo_pruned = false;
  };

  /// Consumes the block; `hash` is its precomputed id. `replay_undo`
  /// non-null is moved from on the trusted tip-extension fast path.
  AcceptBlockResult accept_internal(Block&& block, const Hash256& hash,
                                    BlockUndo* replay_undo);
  /// `undo_hint` non-null takes the no-validation fast path (trusted log
  /// replay of a tip extension) and is moved from.
  bool connect_tip(const Block& block, const Hash256& hash,
                   BlockUndo* undo_hint = nullptr);
  void try_connect_orphans(const Hash256& parent);
  /// Attempt to make `hash` (already stored, with known height) the tip.
  AcceptBlockResult maybe_reorg(const Hash256& hash);

  ChainParams params_;
  std::unordered_map<Hash256, StoredBlock, Hash256Hasher> blocks_;
  std::unordered_map<Hash256, std::vector<Block>, Hash256Hasher> orphans_;
  std::vector<Hash256> active_;
  // txid -> active-chain height, for confirmation queries.
  std::unordered_map<Hash256, int, Hash256Hasher> tx_index_;
  UtxoSet utxo_;
  BlockValidationResult last_failure_;
  std::vector<Transaction> disconnected_txs_;
  BlockSink block_sink_;
  // Replay of the trusted block log: skip structural/PoS/script validation
  // and keep the sink quiet (the records being replayed are already on
  // disk). Set for the duration of replay_block().
  bool replay_mode_ = false;
  // Heights below this are already undo-pruned (prune_undo watermark).
  int undo_pruned_floor_ = 1;
  int last_fork_height_ = -1;
};

}  // namespace bcwan::chain

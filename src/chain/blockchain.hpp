// Chain manager: block storage, longest-chain selection, UTXO tracking and
// reorganisation. Every gateway daemon holds one of these; the directory
// and the fair-exchange watcher read through it.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/block.hpp"
#include "chain/params.hpp"
#include "chain/utxo.hpp"
#include "chain/validation.hpp"

namespace bcwan::chain {

/// Deterministic genesis block for a federation (no PoW requirement).
Block make_genesis(const ChainParams& params);

enum class AcceptBlockResult {
  kConnected,      // extended the active chain
  kReorganized,    // became the new tip via reorg
  kSideChain,      // stored, not the best chain
  kOrphan,         // parent unknown; stored for later
  kDuplicate,
  kInvalid,
};

std::string accept_block_result_name(AcceptBlockResult r);

class Blockchain {
 public:
  explicit Blockchain(const ChainParams& params);

  const ChainParams& params() const noexcept { return params_; }

  /// Height of the tip (genesis = 0).
  int height() const noexcept { return static_cast<int>(active_.size()) - 1; }
  Hash256 tip_hash() const { return active_.back(); }
  const UtxoSet& utxo() const noexcept { return utxo_; }

  /// Validate and store; connects/reorganises as needed. Orphans are kept
  /// and connected automatically when their parent arrives.
  AcceptBlockResult accept_block(const Block& block);

  bool have_block(const Hash256& hash) const {
    return blocks_.find(hash) != blocks_.end();
  }
  std::optional<Block> get_block(const Hash256& hash) const;
  /// Block at an active-chain height.
  std::optional<Block> block_at(int height) const;

  /// Active-chain hashes from genesis to tip.
  const std::vector<Hash256>& active_chain() const noexcept { return active_; }

  /// True if the tx is confirmed in the active chain; returns depth
  /// (1 = in tip block) via out param.
  bool tx_confirmations(const Hash256& txid, int& confirmations) const;

  /// Scan the most recent `depth` blocks of the active chain, newest first.
  /// The callback receives each transaction with its block height.
  void scan_recent(
      int depth,
      const std::function<void(const Transaction&, int height)>& visit) const;

  /// The validation failure recorded for the last kInvalid result.
  const BlockValidationResult& last_failure() const noexcept {
    return last_failure_;
  }

  /// Non-coinbase transactions disconnected by the most recent reorg, in
  /// dependency order (ascending block height, in-block order preserved).
  /// The caller (the node) re-accepts them into its mempool so an orphaned
  /// tx chain — e.g. an offer spending an orphaned announcement's change —
  /// is re-mined instead of vanishing. Moves the list out; empty until the
  /// next reorg.
  std::vector<Transaction> take_disconnected_txs() {
    return std::exchange(disconnected_txs_, {});
  }

  /// Serialize the active chain (blocks above genesis) for persistence or
  /// for bootstrapping a new federation member out-of-band.
  util::Bytes export_chain() const;

  /// Rebuild a chain from an export, re-validating every block under
  /// `params`. std::nullopt if the stream is malformed or any block fails.
  static std::optional<Blockchain> import_chain(const ChainParams& params,
                                                util::ByteView data);

 private:
  struct StoredBlock {
    Block block;
    int height = 0;
    // Undo data exists only while the block is on the active chain.
    BlockUndo undo;
  };

  bool connect_tip(const Block& block);
  void try_connect_orphans(const Hash256& parent);
  /// Attempt to make `hash` (already stored, with known height) the tip.
  AcceptBlockResult maybe_reorg(const Hash256& hash);

  ChainParams params_;
  std::unordered_map<Hash256, StoredBlock, Hash256Hasher> blocks_;
  std::unordered_map<Hash256, std::vector<Block>, Hash256Hasher> orphans_;
  std::vector<Hash256> active_;
  // txid -> active-chain height, for confirmation queries.
  std::unordered_map<Hash256, int, Hash256Hasher> tx_index_;
  UtxoSet utxo_;
  BlockValidationResult last_failure_;
  std::vector<Transaction> disconnected_txs_;
};

}  // namespace bcwan::chain

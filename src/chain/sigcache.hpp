// Salted, bounded verification caches (Bitcoin sigcache style).
//
// Two process-wide caches sit on the validation hot path:
//
//   * the *signature* cache remembers individual ECDSA checks, keyed on
//     H(salt ‖ sighash-digest ‖ pubkey ‖ sig) — a federation daemon verifies
//     the same (message, sig, key) triple once per gossip hop otherwise;
//   * the *script-execution* cache remembers whole transactions whose input
//     scripts all verified, keyed on H(salt ‖ txid) — block connection skips
//     script execution entirely for transactions the mempool already
//     validated. Script validity depends only on the transaction body and
//     the coins it spends, both of which the txid commits to (an outpoint
//     names the creating transaction), so the txid is a sound key.
//
// Only *successful* checks are stored: an entry's presence means "known
// valid", so a poisoned or colliding entry can never turn an invalid spend
// valid without breaking SHA-256. The salt is drawn once per process from
// std::random_device, which keeps an attacker from precomputing keys that
// collide across daemons. Both caches are bounded (random-batch eviction on
// overflow) and guarded by a shared_mutex so the parallel script-check
// workers read concurrently.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <shared_mutex>
#include <unordered_set>

#include "chain/transaction.hpp"
#include "util/bytes.hpp"

namespace bcwan::chain {

class VerifyCache {
 public:
  explicit VerifyCache(std::size_t max_entries = 1 << 18);

  /// Salted key over the concatenated parts (length-prefixed, so distinct
  /// part boundaries can never produce the same preimage).
  Hash256 key(std::initializer_list<util::ByteView> parts) const;

  /// True iff `k` is cached as known-valid. Counts a hit or miss.
  bool contains(const Hash256& k) const;

  /// Record a successful verification. No-op while disabled.
  void insert(const Hash256& k);

  /// Drop all entries and reset counters (tests, bench ablations).
  void clear();

  /// Bench ablation switch: while disabled, contains() misses and insert()
  /// drops, so every check re-executes.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  std::uint64_t hits() const noexcept { return hits_.load(); }
  std::uint64_t misses() const noexcept { return misses_.load(); }
  std::size_t size() const;

 private:
  std::array<std::uint8_t, 32> salt_;
  std::size_t max_entries_;
  mutable std::shared_mutex mutex_;
  std::unordered_set<Hash256, Hash256Hasher> entries_;
  std::atomic<bool> enabled_{true};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

/// Process-wide signature-check cache (TxSignatureChecker::check_sig).
VerifyCache& sig_cache();

/// Process-wide per-transaction script-execution cache, shared between
/// mempool admission and connect_block.
VerifyCache& script_exec_cache();

/// The script-execution-cache key for a transaction id.
Hash256 script_exec_key(const Hash256& txid);

}  // namespace bcwan::chain

// Wallet: key custody, address derivation, coin selection and construction
// of every transaction type in the BcWAN protocol.
//
// A wallet's Base58Check address is the blockchain address (@R) of the
// paper: the identifier nodes send over LoRa and the key under which the
// directory publishes IP addresses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/mempool.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/rsa.hpp"
#include "script/templates.hpp"

namespace bcwan::chain {

/// Version byte for federation addresses.
constexpr std::uint8_t kAddressVersion = 0x19;

/// Base58Check address from a pubkey hash.
std::string encode_address(const script::PubKeyHash& pkh);
std::optional<script::PubKeyHash> decode_address(const std::string& address);

class Wallet {
 public:
  explicit Wallet(crypto::EcKeyPair identity);
  /// Deterministic identity from a human-readable name (simulation actors).
  static Wallet from_seed(std::string_view name);

  const script::PubKeyHash& pkh() const noexcept { return pkh_; }
  const util::Bytes& pubkey() const noexcept { return pubkey_; }
  /// The wallet's blockchain address (@R).
  const std::string& address() const noexcept { return address_; }

  /// Confirmed, mature coins owned by this wallet and not already spent by
  /// an in-pool transaction (when a pool is supplied). Sorted value-desc.
  std::vector<std::pair<OutPoint, Coin>> spendable(
      const Blockchain& chain, const Mempool* pool = nullptr) const;

  Amount balance(const Blockchain& chain, const Mempool* pool = nullptr) const;

  /// Plain payment to a pubkey hash. std::nullopt when funds are
  /// insufficient.
  std::optional<Transaction> create_payment(const Blockchain& chain,
                                            const Mempool* pool,
                                            const script::PubKeyHash& dest,
                                            Amount amount, Amount fee) const;

  /// Funded OP_RETURN announcement (directory entries). The data rides in
  /// output 0; change returns to this wallet.
  std::optional<Transaction> create_announcement(const Blockchain& chain,
                                                 const Mempool* pool,
                                                 util::ByteView data,
                                                 Amount fee) const;

  /// Fair-exchange offer (paper step 9): locks `amount` under the Listing-1
  /// script. This wallet is the buyer; `gateway` is paid for revealing the
  /// ephemeral key; `timeout_height` gates the reclaim branch.
  std::optional<Transaction> create_key_release_offer(
      const Blockchain& chain, const Mempool* pool,
      const crypto::RsaPublicKey& ephemeral_pub,
      const script::PubKeyHash& gateway, Amount amount, Amount fee,
      std::int64_t timeout_height) const;

  /// Gateway redeem (paper step 10): spends the offer output, revealing the
  /// ephemeral secret key on-chain. Pays this wallet.
  Transaction create_redeem(const OutPoint& offer_outpoint,
                            const TxOut& offer_out,
                            const crypto::RsaPrivateKey& ephemeral_priv,
                            Amount fee) const;

  /// Buyer reclaim after timeout: spends the offer output via the CLTV
  /// branch. `timeout_height` becomes the transaction's nLockTime.
  Transaction create_reclaim(const OutPoint& offer_outpoint,
                             const TxOut& offer_out,
                             std::int64_t timeout_height, Amount fee) const;

  /// Sign input `index` of `tx` (P2PKH shape) against the given spent
  /// script; fills the input's scriptSig (and drops any memoized txid —
  /// the signature changes the serialization). `precomp`, when supplied,
  /// must be built from `tx` and provides the sighash digest via midstates;
  /// it stays valid across the whole signing pass because the sighash
  /// template blanks every scriptSig.
  void sign_p2pkh_input(Transaction& tx, std::size_t index,
                        const script::Script& spent_script,
                        const PrecomputedTxData* precomp = nullptr) const;

 private:
  struct Funding {
    std::vector<std::pair<OutPoint, Coin>> inputs;
    Amount total = 0;
  };
  /// Greedy selection of at least `target` value.
  std::optional<Funding> select_coins(const Blockchain& chain,
                                      const Mempool* pool,
                                      Amount target) const;
  /// Assemble inputs + outputs (+change), then sign all inputs.
  Transaction build_and_sign(const Funding& funding,
                             std::vector<TxOut> outputs, Amount change) const;

  crypto::EcKeyPair identity_;
  util::Bytes pubkey_;
  script::PubKeyHash pkh_;
  std::string address_;
  script::Script own_script_;
};

}  // namespace bcwan::chain

#include "chain/blockchain.hpp"

#include <algorithm>

#include "chain/pos.hpp"
#include "script/templates.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/bytes.hpp"
#include "util/serial.hpp"

namespace bcwan::chain {

std::string accept_block_result_name(AcceptBlockResult r) {
  switch (r) {
    case AcceptBlockResult::kConnected: return "connected";
    case AcceptBlockResult::kReorganized: return "reorganized";
    case AcceptBlockResult::kSideChain: return "side-chain";
    case AcceptBlockResult::kOrphan: return "orphan";
    case AcceptBlockResult::kDuplicate: return "duplicate";
    case AcceptBlockResult::kInvalid: return "invalid";
  }
  return "unknown";
}

Block make_genesis(const ChainParams& params) {
  Block genesis;
  Transaction coinbase;
  TxIn in;
  in.prevout = coinbase_prevout();
  script::Script tag;
  tag.push(util::str_bytes("BcWAN federated LPWAN genesis"));
  in.script_sig = tag;
  coinbase.vin.push_back(std::move(in));
  TxOut out;
  out.value = params.block_reward;
  // Unspendable genesis output (no one owns the genesis reward).
  out.script_pubkey = script::make_op_return(util::str_bytes("genesis"));
  coinbase.vout.push_back(std::move(out));
  genesis.txs.push_back(std::move(coinbase));
  genesis.header.merkle_root = compute_merkle_root(genesis.txs);
  genesis.header.target_zero_bits = 0;  // genesis needs no work
  return genesis;
}

Blockchain::Blockchain(const ChainParams& params) : params_(params) {
  const Block genesis = make_genesis(params_);
  const Hash256 hash = genesis.hash();
  StoredBlock stored{genesis, 0, BlockUndo{}};
  // Genesis coinbase outputs are OP_RETURN, so the UTXO set starts empty.
  blocks_.emplace(hash, std::move(stored));
  active_.push_back(hash);
  tx_index_[genesis.txs[0].txid()] = 0;
}

std::optional<Block> Blockchain::get_block(const Hash256& hash) const {
  const auto it = blocks_.find(hash);
  if (it == blocks_.end()) return std::nullopt;
  return it->second.block;
}

std::optional<Block> Blockchain::block_at(int h) const {
  if (h < 0 || h >= static_cast<int>(active_.size())) return std::nullopt;
  return get_block(active_[static_cast<std::size_t>(h)]);
}

bool Blockchain::tx_confirmations(const Hash256& txid,
                                  int& confirmations) const {
  const auto it = tx_index_.find(txid);
  if (it == tx_index_.end()) return false;
  confirmations = height() - it->second + 1;
  return true;
}

void Blockchain::scan_recent(
    int depth,
    const std::function<void(const Transaction&, int)>& visit) const {
  const int lowest = std::max(0, height() - depth + 1);
  for (int h = height(); h >= lowest; --h) {
    const auto it = blocks_.find(active_[static_cast<std::size_t>(h)]);
    for (const Transaction& tx : it->second.block.txs) visit(tx, h);
  }
}

bool Blockchain::connect_tip(const Block& block, const BlockUndo* undo_hint) {
  telemetry::Histogram* connect_hist = nullptr;
  if (telemetry::enabled()) {
    connect_hist = &telemetry::registry().histogram(
        "bcwan_chain_connect_block_seconds",
        "Wall-clock time to validate and connect one block at the tip");
  }
  telemetry::Span span("chain.connect_tip", connect_hist);
  const Hash256 hash = block.hash();
  auto& stored = blocks_.at(hash);
  if (undo_hint != nullptr) {
    // Trusted replay of a logged tip extension: re-apply the recorded UTXO
    // delta, no validation (the log's CRC owns integrity).
    apply_block_from_undo(block, *undo_hint, utxo_, stored.height);
    stored.undo = *undo_hint;
  } else {
    BlockUndo undo;
    const BlockValidationResult result = connect_block(
        block, utxo_, stored.height, params_, undo, !replay_mode_);
    if (!result.ok()) {
      last_failure_ = result;
      return false;
    }
    stored.undo = std::move(undo);
  }
  active_.push_back(hash);
  for (const Transaction& tx : block.txs)
    tx_index_[tx.txid()] = stored.height;
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("bcwan_chain_blocks_connected_total",
                "Blocks connected to the active chain")
        .add();
    reg.counter("bcwan_chain_txs_connected_total",
                "Transactions (incl. coinbases) in connected blocks")
        .add(block.txs.size());
    reg.gauge("bcwan_chain_utxo_size",
              "Unspent outputs tracked by the most recently updated node")
        .set(static_cast<double>(utxo_.size()));
    reg.gauge("bcwan_chain_height",
              "Active chain height of the most recently updated node")
        .set(static_cast<double>(height()));
  }
  return true;
}

AcceptBlockResult Blockchain::accept_block(const Block& block) {
  return accept_internal(block, nullptr);
}

AcceptBlockResult Blockchain::replay_block(const Block& block,
                                           const BlockUndo* undo) {
  replay_mode_ = true;
  const AcceptBlockResult result = accept_internal(block, undo);
  replay_mode_ = false;
  return result;
}

AcceptBlockResult Blockchain::accept_internal(const Block& block,
                                              const BlockUndo* replay_undo) {
  const Hash256 hash = block.hash();
  if (blocks_.find(hash) != blocks_.end()) return AcceptBlockResult::kDuplicate;

  if (!replay_mode_) {
    const BlockValidationResult structural = check_block(block, params_);
    if (!structural.ok()) {
      last_failure_ = structural;
      return AcceptBlockResult::kInvalid;
    }
  }

  const auto parent = blocks_.find(block.header.prev_block);
  if (parent == blocks_.end()) {
    orphans_[block.header.prev_block].push_back(block);
    return AcceptBlockResult::kOrphan;
  }

  const int block_height = parent->second.height + 1;

  // Proof-of-stake election: the block must be signed by the validator the
  // slot-leader schedule picked for this (parent, height).
  if (!replay_mode_ && params_.consensus == ConsensusMode::kProofOfStake) {
    const std::size_t slot = scheduled_proposer(
        params_.validators, block.header.prev_block, block_height);
    if (!pos_verify_block(block.header, params_.validators[slot])) {
      last_failure_ = BlockValidationResult{};
      last_failure_.error = BlockError::kBadProposer;
      return AcceptBlockResult::kInvalid;
    }
  }
  blocks_.emplace(hash, StoredBlock{block, block_height, BlockUndo{}});

  AcceptBlockResult result;
  if (block.header.prev_block == tip_hash()) {
    if (!connect_tip(block, replay_undo)) {
      blocks_.erase(hash);
      return AcceptBlockResult::kInvalid;
    }
    result = AcceptBlockResult::kConnected;
  } else if (block_height > height()) {
    result = maybe_reorg(hash);
    if (result == AcceptBlockResult::kInvalid) {
      blocks_.erase(hash);
      return result;
    }
  } else {
    result = AcceptBlockResult::kSideChain;
  }

  // Persist before orphan descendants are promoted: the log must record a
  // parent ahead of every child so replay never sees an orphan.
  if (!replay_mode_ && block_sink_) {
    const BlockUndo* undo = result == AcceptBlockResult::kConnected
                                ? &blocks_.at(hash).undo
                                : nullptr;
    block_sink_(block, undo);
  }

  try_connect_orphans(hash);
  return result;
}

const BlockUndo* Blockchain::undo_for(const Hash256& hash) const {
  const auto it = blocks_.find(hash);
  if (it == blocks_.end()) return nullptr;
  const int h = it->second.height;
  if (h >= static_cast<int>(active_.size()) ||
      active_[static_cast<std::size_t>(h)] != hash) {
    return nullptr;
  }
  return &it->second.undo;
}

AcceptBlockResult Blockchain::maybe_reorg(const Hash256& new_tip) {
  // Walk back from the candidate tip to the fork point with the active
  // chain, collecting the branch to connect.
  std::vector<Hash256> branch;  // fork-child .. new_tip, reversed below
  Hash256 cursor = new_tip;
  auto on_active = [this](const Hash256& h) {
    const auto it = blocks_.find(h);
    if (it == blocks_.end()) return false;
    const int bh = it->second.height;
    return bh < static_cast<int>(active_.size()) &&
           active_[static_cast<std::size_t>(bh)] == h;
  };
  while (!on_active(cursor)) {
    branch.push_back(cursor);
    cursor = blocks_.at(cursor).block.header.prev_block;
  }
  std::reverse(branch.begin(), branch.end());
  const int fork_height = blocks_.at(cursor).height;

  // Disconnect the current chain down to the fork point, remembering what
  // we removed in case the branch turns out to be invalid.
  std::vector<Hash256> removed;
  while (height() > fork_height) {
    const Hash256 old_tip = active_.back();
    auto& stored = blocks_.at(old_tip);
    disconnect_block(stored.undo, utxo_);
    stored.undo = BlockUndo{};
    for (const Transaction& tx : stored.block.txs)
      tx_index_.erase(tx.txid());
    active_.pop_back();
    removed.push_back(old_tip);
  }
  std::reverse(removed.begin(), removed.end());  // ascending height order

  // Expose the losing branch's transactions (dependency order) so the node
  // can resurrect them into its mempool; a coinbase-only winning branch
  // would otherwise silently destroy every exchange the old branch carried.
  disconnected_txs_.clear();
  for (const Hash256& h : removed) {
    const Block& old_block = blocks_.at(h).block;
    for (std::size_t i = 1; i < old_block.txs.size(); ++i)
      disconnected_txs_.push_back(old_block.txs[i]);
  }

  // Connect the branch.
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_chain_reorgs_total",
                 "Chain reorganizations attempted (incl. rolled-back ones)")
        .add();
  }
  for (std::size_t i = 0; i < branch.size(); ++i) {
    if (!connect_tip(blocks_.at(branch[i]).block)) {
      // Invalid branch: roll back whatever connected and restore the old
      // chain (its blocks were valid before and validate again).
      while (height() > fork_height) {
        const Hash256 bad_tip = active_.back();
        auto& stored = blocks_.at(bad_tip);
        disconnect_block(stored.undo, utxo_);
        stored.undo = BlockUndo{};
        for (const Transaction& tx : stored.block.txs)
          tx_index_.erase(tx.txid());
        active_.pop_back();
      }
      for (const Hash256& h : removed) {
        const bool ok = connect_tip(blocks_.at(h).block);
        (void)ok;  // previously-active blocks reconnect by construction
      }
      disconnected_txs_.clear();  // nothing was lost after all
      return AcceptBlockResult::kInvalid;
    }
  }
  return AcceptBlockResult::kReorganized;
}

util::Bytes Blockchain::export_chain() const {
  util::Writer w;
  w.varint(active_.size() - 1);  // genesis is implicit (deterministic)
  for (std::size_t h = 1; h < active_.size(); ++h) {
    w.var_bytes(blocks_.at(active_[h]).block.serialize());
  }
  return w.take();
}

std::optional<Blockchain> Blockchain::import_chain(const ChainParams& params,
                                                   util::ByteView data) {
  try {
    util::Reader r(data);
    Blockchain chain(params);
    const std::uint64_t count = r.varint();
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto block = Block::deserialize(r.var_bytes());
      if (!block) return std::nullopt;
      if (chain.accept_block(*block) != AcceptBlockResult::kConnected) {
        return std::nullopt;
      }
    }
    r.expect_done();
    return chain;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

Hash256 Blockchain::state_hash() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(height()));
  const Hash256 tip = tip_hash();
  w.bytes(util::ByteView(tip.data(), tip.size()));
  const Hash256 utxo_hash = utxo_.state_hash();
  w.bytes(util::ByteView(utxo_hash.data(), utxo_hash.size()));
  return crypto::sha256d(w.take());
}

namespace {
constexpr std::uint32_t kStateVersion = 1;
}  // namespace

util::Bytes Blockchain::serialize_state() const {
  util::Writer w;
  w.u32(kStateVersion);
  w.varint(blocks_.size());
  for (const auto& [hash, stored] : blocks_) {
    w.var_bytes(stored.block.serialize());
    w.u32(static_cast<std::uint32_t>(stored.height));
    util::Writer undo_w;
    write_undo(undo_w, stored.undo);
    w.var_bytes(undo_w.take());
  }
  w.varint(active_.size());
  for (const Hash256& h : active_)
    w.bytes(util::ByteView(h.data(), h.size()));
  w.var_bytes(utxo_.serialize());
  return w.take();
}

std::optional<Blockchain> Blockchain::restore_state(const ChainParams& params,
                                                    util::ByteView data) {
  try {
    util::Reader r(data);
    if (r.u32() != kStateVersion) return std::nullopt;
    Blockchain chain(params);
    const Hash256 genesis_hash = chain.active_.front();
    chain.blocks_.clear();
    chain.active_.clear();
    chain.tx_index_.clear();

    const std::uint64_t block_count = r.varint();
    chain.blocks_.reserve(static_cast<std::size_t>(block_count));
    for (std::uint64_t i = 0; i < block_count; ++i) {
      const auto block = Block::deserialize(r.var_bytes());
      if (!block) return std::nullopt;
      const int block_height = static_cast<int>(r.u32());
      const util::Bytes undo_bytes = r.var_bytes();
      util::Reader undo_r(undo_bytes);
      BlockUndo undo = read_undo(undo_r);
      undo_r.expect_done();
      const Hash256 hash = block->hash();
      chain.blocks_.emplace(hash,
                            StoredBlock{*block, block_height, std::move(undo)});
    }

    const std::uint64_t active_count = r.varint();
    chain.active_.reserve(static_cast<std::size_t>(active_count));
    for (std::uint64_t i = 0; i < active_count; ++i) {
      Hash256 h{};
      const util::Bytes raw = r.bytes(h.size());
      std::copy(raw.begin(), raw.end(), h.begin());
      chain.active_.push_back(h);
    }

    auto utxo = UtxoSet::deserialize(r.var_bytes());
    if (!utxo) return std::nullopt;
    chain.utxo_ = *std::move(utxo);
    r.expect_done();

    // Structural consistency: the active chain must start at this
    // federation's deterministic genesis and every entry must be a stored
    // block whose recorded height matches its position.
    if (chain.active_.empty() || chain.active_.front() != genesis_hash) {
      return std::nullopt;
    }
    for (std::size_t h = 0; h < chain.active_.size(); ++h) {
      const auto it = chain.blocks_.find(chain.active_[h]);
      if (it == chain.blocks_.end()) return std::nullopt;
      if (it->second.height != static_cast<int>(h)) return std::nullopt;
      if (h > 0 &&
          it->second.block.header.prev_block != chain.active_[h - 1]) {
        return std::nullopt;
      }
      for (const Transaction& tx : it->second.block.txs)
        chain.tx_index_[tx.txid()] = static_cast<int>(h);
    }
    return chain;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

void Blockchain::try_connect_orphans(const Hash256& parent) {
  const auto it = orphans_.find(parent);
  if (it == orphans_.end()) return;
  const std::vector<Block> pending = std::move(it->second);
  orphans_.erase(it);
  for (const Block& block : pending) accept_block(block);
}

}  // namespace bcwan::chain

#include "chain/blockchain.hpp"

#include <algorithm>

#include "chain/pos.hpp"
#include "script/templates.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/bytes.hpp"
#include "util/serial.hpp"

namespace bcwan::chain {

std::string accept_block_result_name(AcceptBlockResult r) {
  switch (r) {
    case AcceptBlockResult::kConnected: return "connected";
    case AcceptBlockResult::kReorganized: return "reorganized";
    case AcceptBlockResult::kSideChain: return "side-chain";
    case AcceptBlockResult::kOrphan: return "orphan";
    case AcceptBlockResult::kDuplicate: return "duplicate";
    case AcceptBlockResult::kInvalid: return "invalid";
  }
  return "unknown";
}

Block make_genesis(const ChainParams& params) {
  Block genesis;
  Transaction coinbase;
  TxIn in;
  in.prevout = coinbase_prevout();
  script::Script tag;
  tag.push(util::str_bytes("BcWAN federated LPWAN genesis"));
  in.script_sig = tag;
  coinbase.vin.push_back(std::move(in));
  TxOut out;
  out.value = params.block_reward;
  // Unspendable genesis output (no one owns the genesis reward).
  out.script_pubkey = script::make_op_return(util::str_bytes("genesis"));
  coinbase.vout.push_back(std::move(out));
  genesis.txs.push_back(std::move(coinbase));
  genesis.header.merkle_root = compute_merkle_root(genesis.txs);
  genesis.header.target_zero_bits = 0;  // genesis needs no work
  return genesis;
}

Blockchain::Blockchain(const ChainParams& params) : params_(params) {
  const Block genesis = make_genesis(params_);
  const Hash256 hash = genesis.hash();
  StoredBlock stored{genesis, 0, BlockUndo{}};
  // Genesis coinbase outputs are OP_RETURN, so the UTXO set starts empty.
  blocks_.emplace(hash, std::move(stored));
  active_.push_back(hash);
  tx_index_[genesis.txs[0].txid()] = 0;
}

std::optional<Block> Blockchain::get_block(const Hash256& hash) const {
  const auto it = blocks_.find(hash);
  if (it == blocks_.end()) return std::nullopt;
  return it->second.block;
}

std::optional<Block> Blockchain::block_at(int h) const {
  if (h < 0 || h >= static_cast<int>(active_.size())) return std::nullopt;
  return get_block(active_[static_cast<std::size_t>(h)]);
}

bool Blockchain::tx_confirmations(const Hash256& txid,
                                  int& confirmations) const {
  const auto it = tx_index_.find(txid);
  if (it == tx_index_.end()) return false;
  confirmations = height() - it->second + 1;
  return true;
}

void Blockchain::scan_recent(
    int depth,
    const std::function<void(const Transaction&, int)>& visit) const {
  const int lowest = std::max(0, height() - depth + 1);
  for (int h = height(); h >= lowest; --h) {
    const auto it = blocks_.find(active_[static_cast<std::size_t>(h)]);
    for (const Transaction& tx : it->second.block.txs) visit(tx, h);
  }
}

bool Blockchain::connect_tip(const Block& block, const Hash256& hash,
                             BlockUndo* undo_hint) {
  // Telemetry is gated off during trusted log replay: four registry
  // lookups per block were a measurable slice of the recovery profile.
  const bool note = telemetry::enabled() && !replay_mode_;
  telemetry::Histogram* connect_hist = nullptr;
  if (note) {
    connect_hist = &telemetry::registry().histogram(
        "bcwan_chain_connect_block_seconds",
        "Wall-clock time to validate and connect one block at the tip");
  }
  telemetry::Span span("chain.connect_tip", connect_hist);
  auto& stored = blocks_.at(hash);
  if (undo_hint != nullptr) {
    // Trusted replay of a logged tip extension: re-apply the recorded UTXO
    // delta, no validation (the log's CRC owns integrity).
    apply_block_from_undo(block, *undo_hint, utxo_, stored.height);
    stored.undo = std::move(*undo_hint);
  } else {
    BlockUndo undo;
    const BlockValidationResult result = connect_block(
        block, utxo_, stored.height, params_, undo, !replay_mode_);
    if (!result.ok()) {
      last_failure_ = result;
      return false;
    }
    stored.undo = std::move(undo);
  }
  stored.undo_pruned = false;
  active_.push_back(hash);
  for (const Transaction& tx : block.txs)
    tx_index_[tx.txid()] = stored.height;
  if (note) {
    auto& reg = telemetry::registry();
    reg.counter("bcwan_chain_blocks_connected_total",
                "Blocks connected to the active chain")
        .add();
    reg.counter("bcwan_chain_txs_connected_total",
                "Transactions (incl. coinbases) in connected blocks")
        .add(block.txs.size());
    reg.gauge("bcwan_chain_utxo_size",
              "Unspent outputs tracked by the most recently updated node")
        .set(static_cast<double>(utxo_.size()));
    reg.gauge("bcwan_chain_height",
              "Active chain height of the most recently updated node")
        .set(static_cast<double>(height()));
  }
  return true;
}

AcceptBlockResult Blockchain::accept_block(const Block& block) {
  return accept_internal(Block(block), block.hash(), nullptr);
}

AcceptBlockResult Blockchain::replay_block(const Block& block,
                                           const BlockUndo* undo) {
  std::optional<BlockUndo> undo_copy;
  if (undo != nullptr) undo_copy = *undo;
  return replay_block(Block(block), block.hash(),
                      undo_copy ? &*undo_copy : nullptr);
}

AcceptBlockResult Blockchain::replay_block(Block&& block, const Hash256& hash,
                                           BlockUndo* undo) {
  replay_mode_ = true;
  const AcceptBlockResult result =
      accept_internal(std::move(block), hash, undo);
  replay_mode_ = false;
  return result;
}

void Blockchain::reserve_for_replay(std::size_t blocks, std::size_t txs) {
  blocks_.reserve(blocks_.size() + blocks);
  tx_index_.reserve(tx_index_.size() + txs);
  active_.reserve(active_.size() + blocks);
}

AcceptBlockResult Blockchain::accept_internal(Block&& block,
                                              const Hash256& hash,
                                              BlockUndo* replay_undo) {
  if (blocks_.find(hash) != blocks_.end()) return AcceptBlockResult::kDuplicate;

  if (!replay_mode_) {
    const BlockValidationResult structural = check_block(block, params_);
    if (!structural.ok()) {
      last_failure_ = structural;
      return AcceptBlockResult::kInvalid;
    }
  }

  const auto parent = blocks_.find(block.header.prev_block);
  if (parent == blocks_.end()) {
    orphans_[block.header.prev_block].push_back(std::move(block));
    return AcceptBlockResult::kOrphan;
  }

  const int block_height = parent->second.height + 1;

  // Proof-of-stake election: the block must be signed by the validator the
  // slot-leader schedule picked for this (parent, height).
  if (!replay_mode_ && params_.consensus == ConsensusMode::kProofOfStake) {
    const std::size_t slot = scheduled_proposer(
        params_.validators, block.header.prev_block, block_height);
    if (!pos_verify_block(block.header, params_.validators[slot])) {
      last_failure_ = BlockValidationResult{};
      last_failure_.error = BlockError::kBadProposer;
      return AcceptBlockResult::kInvalid;
    }
  }
  const Block& stored_block =
      blocks_
          .emplace(hash, StoredBlock{std::move(block), block_height,
                                     BlockUndo{}, false})
          .first->second.block;

  AcceptBlockResult result;
  if (stored_block.header.prev_block == tip_hash()) {
    if (!connect_tip(stored_block, hash, replay_undo)) {
      blocks_.erase(hash);
      return AcceptBlockResult::kInvalid;
    }
    result = AcceptBlockResult::kConnected;
  } else if (block_height > height()) {
    result = maybe_reorg(hash);
    if (result == AcceptBlockResult::kInvalid) {
      blocks_.erase(hash);
      return result;
    }
  } else {
    result = AcceptBlockResult::kSideChain;
  }

  // Persist before orphan descendants are promoted: the log must record a
  // parent ahead of every child so replay never sees an orphan.
  if (!replay_mode_ && block_sink_) {
    const BlockUndo* undo = result == AcceptBlockResult::kConnected
                                ? &blocks_.at(hash).undo
                                : nullptr;
    block_sink_(stored_block, undo);
  }

  try_connect_orphans(hash);
  return result;
}

const BlockUndo* Blockchain::undo_for(const Hash256& hash) const {
  const auto it = blocks_.find(hash);
  if (it == blocks_.end()) return nullptr;
  const int h = it->second.height;
  if (h >= static_cast<int>(active_.size()) ||
      active_[static_cast<std::size_t>(h)] != hash) {
    return nullptr;
  }
  return &it->second.undo;
}

AcceptBlockResult Blockchain::maybe_reorg(const Hash256& new_tip) {
  // Walk back from the candidate tip to the fork point with the active
  // chain, collecting the branch to connect.
  std::vector<Hash256> branch;  // fork-child .. new_tip, reversed below
  Hash256 cursor = new_tip;
  auto on_active = [this](const Hash256& h) {
    const auto it = blocks_.find(h);
    if (it == blocks_.end()) return false;
    const int bh = it->second.height;
    return bh < static_cast<int>(active_.size()) &&
           active_[static_cast<std::size_t>(bh)] == h;
  };
  while (!on_active(cursor)) {
    branch.push_back(cursor);
    cursor = blocks_.at(cursor).block.header.prev_block;
  }
  std::reverse(branch.begin(), branch.end());
  const int fork_height = blocks_.at(cursor).height;

  // Undo pruning guard: a reorg that would disconnect a block whose undo
  // was pruned (beyond the configured reorg depth) is impossible — treat
  // the branch as a side chain rather than corrupting the UTXO set.
  for (int h = height(); h > fork_height; --h) {
    if (blocks_.at(active_[static_cast<std::size_t>(h)]).undo_pruned) {
      if (telemetry::enabled()) {
        telemetry::registry()
            .counter("bcwan_chain_reorgs_refused_pruned_total",
                     "Reorganizations refused because the losing branch's "
                     "undo data was pruned")
            .add();
      }
      return AcceptBlockResult::kSideChain;
    }
  }

  // Disconnect the current chain down to the fork point, remembering what
  // we removed in case the branch turns out to be invalid.
  std::vector<Hash256> removed;
  while (height() > fork_height) {
    const Hash256 old_tip = active_.back();
    auto& stored = blocks_.at(old_tip);
    disconnect_block(stored.undo, utxo_);
    stored.undo = BlockUndo{};
    for (const Transaction& tx : stored.block.txs)
      tx_index_.erase(tx.txid());
    active_.pop_back();
    removed.push_back(old_tip);
  }
  std::reverse(removed.begin(), removed.end());  // ascending height order

  // Expose the losing branch's transactions (dependency order) so the node
  // can resurrect them into its mempool; a coinbase-only winning branch
  // would otherwise silently destroy every exchange the old branch carried.
  disconnected_txs_.clear();
  for (const Hash256& h : removed) {
    const Block& old_block = blocks_.at(h).block;
    for (std::size_t i = 1; i < old_block.txs.size(); ++i)
      disconnected_txs_.push_back(old_block.txs[i]);
  }

  // Connect the branch.
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_chain_reorgs_total",
                 "Chain reorganizations attempted (incl. rolled-back ones)")
        .add();
  }
  for (std::size_t i = 0; i < branch.size(); ++i) {
    if (!connect_tip(blocks_.at(branch[i]).block, branch[i])) {
      // Invalid branch: roll back whatever connected and restore the old
      // chain (its blocks were valid before and validate again).
      while (height() > fork_height) {
        const Hash256 bad_tip = active_.back();
        auto& stored = blocks_.at(bad_tip);
        disconnect_block(stored.undo, utxo_);
        stored.undo = BlockUndo{};
        for (const Transaction& tx : stored.block.txs)
          tx_index_.erase(tx.txid());
        active_.pop_back();
      }
      for (const Hash256& h : removed) {
        const bool ok = connect_tip(blocks_.at(h).block, h);
        (void)ok;  // previously-active blocks reconnect by construction
      }
      disconnected_txs_.clear();  // nothing was lost after all
      return AcceptBlockResult::kInvalid;
    }
  }
  last_fork_height_ = fork_height;
  return AcceptBlockResult::kReorganized;
}

util::Bytes Blockchain::export_chain() const {
  util::Writer w;
  w.varint(active_.size() - 1);  // genesis is implicit (deterministic)
  for (std::size_t h = 1; h < active_.size(); ++h) {
    w.var_bytes(blocks_.at(active_[h]).block.serialize());
  }
  return w.take();
}

std::optional<Blockchain> Blockchain::import_chain(const ChainParams& params,
                                                   util::ByteView data) {
  try {
    util::Reader r(data);
    Blockchain chain(params);
    const std::uint64_t count = r.varint();
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto block = Block::deserialize(r.var_bytes());
      if (!block) return std::nullopt;
      if (chain.accept_block(*block) != AcceptBlockResult::kConnected) {
        return std::nullopt;
      }
    }
    r.expect_done();
    return chain;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

Hash256 Blockchain::state_hash() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(height()));
  const Hash256 tip = tip_hash();
  w.bytes(util::ByteView(tip.data(), tip.size()));
  const Hash256 utxo_hash = utxo_.state_hash();
  w.bytes(util::ByteView(utxo_hash.data(), utxo_hash.size()));
  return crypto::sha256d(w.take());
}

namespace {
// v2 adds a per-block flags byte (bit 0: undo pruned). v1 dumps are still
// readable — flags default to zero.
constexpr std::uint32_t kStateVersion = 2;
constexpr std::uint32_t kStateVersionV1 = 1;
constexpr std::uint8_t kBlockFlagUndoPruned = 0x01;
}  // namespace

util::Bytes Blockchain::serialize_state(int undo_keep_depth) const {
  // Heights at or below this lose their undo data in the dump.
  const int prune_below =
      undo_keep_depth >= 0 ? height() - undo_keep_depth : -1;
  static const BlockUndo kEmptyUndo;
  util::Writer w;
  w.u32(kStateVersion);
  w.varint(blocks_.size());
  for (const auto& [hash, stored] : blocks_) {
    w.var_bytes(stored.block.serialize());
    w.u32(static_cast<std::uint32_t>(stored.height));
    const bool on_active =
        stored.height < static_cast<int>(active_.size()) &&
        active_[static_cast<std::size_t>(stored.height)] == hash;
    const bool prune =
        stored.undo_pruned || (on_active && stored.height > 0 &&
                               stored.height <= prune_below);
    w.u8(prune ? kBlockFlagUndoPruned : 0);
    util::Writer undo_w;
    write_undo(undo_w, prune ? kEmptyUndo : stored.undo);
    w.var_bytes(undo_w.take());
  }
  w.varint(active_.size());
  for (const Hash256& h : active_)
    w.bytes(util::ByteView(h.data(), h.size()));
  w.var_bytes(utxo_.serialize());
  return w.take();
}

std::optional<Blockchain> Blockchain::restore_state(const ChainParams& params,
                                                    util::ByteView data) {
  try {
    util::Reader r(data);
    const std::uint32_t version = r.u32();
    if (version != kStateVersion && version != kStateVersionV1)
      return std::nullopt;
    Blockchain chain(params);
    const Hash256 genesis_hash = chain.active_.front();
    chain.blocks_.clear();
    chain.active_.clear();
    chain.tx_index_.clear();

    const std::uint64_t block_count = r.varint();
    chain.blocks_.reserve(static_cast<std::size_t>(block_count));
    for (std::uint64_t i = 0; i < block_count; ++i) {
      auto block = Block::deserialize(r.var_view());
      if (!block) return std::nullopt;
      const int block_height = static_cast<int>(r.u32());
      const std::uint8_t flags =
          version >= kStateVersion ? r.u8() : std::uint8_t{0};
      util::Reader undo_r(r.var_view());
      BlockUndo undo = read_undo(undo_r);
      undo_r.expect_done();
      const Hash256 hash = block->hash();
      chain.blocks_.emplace(
          hash, StoredBlock{*std::move(block), block_height, std::move(undo),
                            (flags & kBlockFlagUndoPruned) != 0});
    }

    const std::uint64_t active_count = r.varint();
    chain.active_.reserve(static_cast<std::size_t>(active_count));
    for (std::uint64_t i = 0; i < active_count; ++i) {
      Hash256 h{};
      const util::Bytes raw = r.bytes(h.size());
      std::copy(raw.begin(), raw.end(), h.begin());
      chain.active_.push_back(h);
    }

    auto utxo = UtxoSet::deserialize(r.var_bytes());
    if (!utxo) return std::nullopt;
    chain.utxo_ = *std::move(utxo);
    r.expect_done();

    // Structural consistency: the active chain must start at this
    // federation's deterministic genesis and every entry must be a stored
    // block whose recorded height matches its position.
    if (chain.active_.empty() || chain.active_.front() != genesis_hash) {
      return std::nullopt;
    }
    for (std::size_t h = 0; h < chain.active_.size(); ++h) {
      const auto it = chain.blocks_.find(chain.active_[h]);
      if (it == chain.blocks_.end()) return std::nullopt;
      if (it->second.height != static_cast<int>(h)) return std::nullopt;
      if (h > 0 &&
          it->second.block.header.prev_block != chain.active_[h - 1]) {
        return std::nullopt;
      }
      if (it->second.undo_pruned)
        chain.undo_pruned_floor_ = static_cast<int>(h) + 1;
      for (const Transaction& tx : it->second.block.txs)
        chain.tx_index_[tx.txid()] = static_cast<int>(h);
    }
    return chain;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

std::optional<StateDelta> Blockchain::collect_state_delta(
    const Hash256& anchor_tip, int anchor_height,
    const std::vector<Hash256>& pending) {
  if (!utxo_.journal_enabled()) return std::nullopt;
  const auto anchor_it = blocks_.find(anchor_tip);
  if (anchor_it == blocks_.end() ||
      anchor_it->second.height != anchor_height) {
    return std::nullopt;
  }
  StateDelta d;
  d.new_blocks.reserve(pending.size());
  for (const Hash256& h : pending) {
    const auto it = blocks_.find(h);
    if (it == blocks_.end()) return std::nullopt;
    d.new_blocks.push_back({it->second.block, it->second.height});
  }

  // Fork point of the anchor tip against the current active chain; since
  // genesis is always active the walk terminates.
  auto on_active = [this](const Hash256& h) {
    const auto it = blocks_.find(h);
    if (it == blocks_.end()) return false;
    const int bh = it->second.height;
    return bh < static_cast<int>(active_.size()) &&
           active_[static_cast<std::size_t>(bh)] == h;
  };
  Hash256 cursor = anchor_tip;
  while (!on_active(cursor))
    cursor = blocks_.at(cursor).block.header.prev_block;
  const int fork_height = blocks_.at(cursor).height;
  d.pop = static_cast<std::uint32_t>(anchor_height - fork_height);
  for (int h = fork_height + 1; h <= height(); ++h) {
    const Hash256& hash = active_[static_cast<std::size_t>(h)];
    d.push.push_back({hash, blocks_.at(hash).undo});
  }

  UtxoJournal journal = utxo_.take_journal();
  d.spent = std::move(journal.spent);
  d.added = std::move(journal.added);
  d.tip_height = height();
  d.tip_hash = tip_hash();
  return d;
}

bool Blockchain::apply_state_delta(const StateDelta& d) {
  // 1. Store the window's new blocks (parents arrive before children).
  for (const StateDelta::NewBlock& nb : d.new_blocks) {
    const Hash256 hash = nb.block.hash();
    if (blocks_.find(hash) != blocks_.end()) return false;
    const auto parent = blocks_.find(nb.block.header.prev_block);
    if (parent == blocks_.end() || parent->second.height + 1 != nb.height)
      return false;
    blocks_.emplace(hash, StoredBlock{nb.block, nb.height, BlockUndo{}});
  }

  // 2. Rewind the active chain to the window's fork point.
  if (d.pop >= active_.size()) return false;
  for (std::uint32_t i = 0; i < d.pop; ++i) {
    auto& stored = blocks_.at(active_.back());
    stored.undo = BlockUndo{};
    for (const Transaction& tx : stored.block.txs) tx_index_.erase(tx.txid());
    active_.pop_back();
  }

  // 3. Extend with the winning branch (undo data travels with it).
  for (const StateDelta::PushedBlock& p : d.push) {
    const auto it = blocks_.find(p.hash);
    if (it == blocks_.end()) return false;
    if (it->second.block.header.prev_block != active_.back()) return false;
    if (it->second.height != static_cast<int>(active_.size())) return false;
    it->second.undo = p.undo;
    it->second.undo_pruned = false;
    for (const Transaction& tx : it->second.block.txs)
      tx_index_[tx.txid()] = it->second.height;
    active_.push_back(p.hash);
  }

  // 4. Net UTXO edit — spends before adds so a coin replaced within the
  // window (same outpoint re-created on the winning branch) lands cleanly.
  for (const OutPoint& op : d.spent) {
    if (!utxo_.spend(op)) return false;
  }
  for (const auto& [op, coin] : d.added) utxo_.add(op, coin);

  // 5. The delta must land exactly on the tip it was collected at.
  return height() == d.tip_height && tip_hash() == d.tip_hash;
}

std::size_t Blockchain::prune_undo(int keep_depth) {
  if (keep_depth < 0) return 0;
  std::size_t pruned = 0;
  const int limit = height() - keep_depth;
  for (int h = std::max(1, undo_pruned_floor_); h <= limit; ++h) {
    auto& stored = blocks_.at(active_[static_cast<std::size_t>(h)]);
    if (!stored.undo_pruned) {
      stored.undo = BlockUndo{};
      stored.undo_pruned = true;
      ++pruned;
    }
  }
  if (limit + 1 > undo_pruned_floor_) undo_pruned_floor_ = limit + 1;
  return pruned;
}

bool Blockchain::undo_pruned_at(int h) const {
  if (h < 0 || h >= static_cast<int>(active_.size())) return false;
  return blocks_.at(active_[static_cast<std::size_t>(h)]).undo_pruned;
}

void Blockchain::try_connect_orphans(const Hash256& parent) {
  const auto it = orphans_.find(parent);
  if (it == orphans_.end()) return;
  const std::vector<Block> pending = std::move(it->second);
  orphans_.erase(it);
  for (const Block& block : pending) accept_block(block);
}

}  // namespace bcwan::chain

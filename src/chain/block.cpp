#include "chain/block.hpp"

#include <cstring>

#include "util/serial.hpp"

namespace bcwan::chain {

util::Bytes BlockHeader::serialize() const {
  util::Writer w;
  w.u32(version);
  w.bytes(util::ByteView(prev_block.data(), prev_block.size()));
  w.bytes(util::ByteView(merkle_root.data(), merkle_root.size()));
  w.u64(time);
  w.u32(target_zero_bits);
  w.u32(nonce);
  w.var_bytes(proposer_pubkey);
  w.var_bytes(pos_signature);
  return w.take();
}

Hash256 BlockHeader::hash() const { return crypto::sha256d(serialize()); }

util::Bytes Block::serialize() const {
  util::Writer w;
  w.bytes(header.serialize());
  w.varint(txs.size());
  for (const Transaction& tx : txs) w.var_bytes(tx.serialize());
  return w.take();
}

std::optional<Block> Block::deserialize(util::ByteView data) {
  try {
    util::Reader r(data);
    Block b;
    b.header.version = r.u32();
    const util::Bytes prev = r.bytes(32);
    std::memcpy(b.header.prev_block.data(), prev.data(), 32);
    const util::Bytes root = r.bytes(32);
    std::memcpy(b.header.merkle_root.data(), root.data(), 32);
    b.header.time = r.u64();
    b.header.target_zero_bits = r.u32();
    b.header.nonce = r.u32();
    b.header.proposer_pubkey = r.var_bytes();
    b.header.pos_signature = r.var_bytes();
    const std::uint64_t ntx = r.varint();
    for (std::uint64_t i = 0; i < ntx; ++i) {
      const util::Bytes raw = r.var_bytes();
      auto tx = Transaction::deserialize(raw);
      if (!tx) return std::nullopt;
      b.txs.push_back(*std::move(tx));
    }
    r.expect_done();
    return b;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

Hash256 merkle_root(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return Hash256{};
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash256& left = level[i];
      const Hash256& right = i + 1 < level.size() ? level[i + 1] : level[i];
      util::Bytes combined(left.begin(), left.end());
      combined.insert(combined.end(), right.begin(), right.end());
      next.push_back(crypto::sha256d(combined));
    }
    level = std::move(next);
  }
  return level[0];
}

Hash256 compute_merkle_root(const std::vector<Transaction>& txs) {
  std::vector<Hash256> leaves;
  leaves.reserve(txs.size());
  for (const Transaction& tx : txs) leaves.push_back(tx.txid());
  return merkle_root(leaves);
}

bool hash_meets_target(const Hash256& hash, unsigned zero_bits) noexcept {
  unsigned checked = 0;
  for (std::uint8_t byte : hash) {
    if (checked + 8 <= zero_bits) {
      if (byte != 0) return false;
      checked += 8;
    } else if (checked < zero_bits) {
      const unsigned rem = zero_bits - checked;
      if (byte >> (8 - rem) != 0) return false;
      return true;
    } else {
      return true;
    }
  }
  return true;
}

bool solve_pow(BlockHeader& header) {
  for (std::uint64_t nonce = 0; nonce <= 0xffffffffULL; ++nonce) {
    header.nonce = static_cast<std::uint32_t>(nonce);
    if (hash_meets_target(header.hash(), header.target_zero_bits)) return true;
  }
  return false;
}

}  // namespace bcwan::chain

#include "chain/block.hpp"

#include <algorithm>
#include <cstring>
#include <functional>

#include "util/serial.hpp"
#include "util/threadpool.hpp"

namespace bcwan::chain {

util::Bytes BlockHeader::serialize() const {
  util::Writer w;
  w.u32(version);
  w.bytes(util::ByteView(prev_block.data(), prev_block.size()));
  w.bytes(util::ByteView(merkle_root.data(), merkle_root.size()));
  w.u64(time);
  w.u32(target_zero_bits);
  w.u32(nonce);
  w.var_bytes(proposer_pubkey);
  w.var_bytes(pos_signature);
  return w.take();
}

Hash256 BlockHeader::hash() const { return crypto::sha256d(serialize()); }

util::Bytes Block::serialize() const {
  util::Writer w;
  w.bytes(header.serialize());
  w.varint(txs.size());
  for (const Transaction& tx : txs) w.var_bytes(tx.serialize());
  return w.take();
}

std::optional<Block> Block::deserialize(util::ByteView data,
                                        bool compute_txids) {
  try {
    util::Reader r(data);
    Block b;
    b.header.version = r.u32();
    std::memcpy(b.header.prev_block.data(), r.view(32).data(), 32);
    std::memcpy(b.header.merkle_root.data(), r.view(32).data(), 32);
    b.header.time = r.u64();
    b.header.target_zero_bits = r.u32();
    b.header.nonce = r.u32();
    b.header.proposer_pubkey = r.var_bytes();
    b.header.pos_signature = r.var_bytes();
    const std::uint64_t ntx = r.varint();
    // Each tx is at least a handful of bytes; the min() keeps a corrupt
    // count from reserving unbounded memory before the parse fails.
    b.txs.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(ntx, r.remaining() / 8 + 1)));
    for (std::uint64_t i = 0; i < ntx; ++i) {
      const util::ByteView raw = r.var_view();
      auto tx = Transaction::deserialize(raw, compute_txids);
      if (!tx) return std::nullopt;
      b.txs.push_back(*std::move(tx));
    }
    r.expect_done();
    return b;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

namespace {

/// Below this many pairs a level is hashed on the calling thread; pool
/// dispatch overhead would eat the win on small levels (and every tree
/// shrinks under the threshold within a few levels anyway).
constexpr std::size_t kMinPairsPerWorker = 64;

}  // namespace

Hash256 merkle_root(const std::vector<Hash256>& leaves, unsigned threads) {
  if (leaves.empty()) return Hash256{};
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    // Duplicate the last node on odd levels up front so every pair is one
    // contiguous 64-byte input: Hash256 is std::array<uint8_t, 32>, so the
    // level's vector storage IS the packed input buffer for sha256d64.
    if (level.size() & 1) level.push_back(level.back());
    const std::size_t pairs = level.size() / 2;
    std::vector<Hash256> next(pairs);
    const std::uint8_t* in = level[0].data();
    std::uint8_t* out = next[0].data();

    if (threads > 1 && pairs >= 2 * kMinPairsPerWorker) {
      // Split the level into equal slices; each worker runs the batched
      // kernel on its own disjoint range, so the output is bitwise the
      // same as the serial pass regardless of scheduling.
      const std::size_t slices =
          std::min<std::size_t>(threads, pairs / kMinPairsPerWorker);
      const std::size_t per = (pairs + slices - 1) / slices;
      std::vector<std::function<void()>> tasks;
      tasks.reserve(slices);
      for (std::size_t begin = 0; begin < pairs; begin += per) {
        const std::size_t count = std::min(per, pairs - begin);
        tasks.push_back([in, out, begin, count] {
          crypto::sha256d64(out + 32 * begin, in + 64 * begin, count);
        });
      }
      util::ThreadPool::shared(threads - 1).run(std::move(tasks));
    } else {
      crypto::sha256d64(out, in, pairs);
    }
    level = std::move(next);
  }
  return level[0];
}

Hash256 compute_merkle_root(const std::vector<Transaction>& txs,
                            unsigned threads) {
  std::vector<Hash256> leaves;
  leaves.reserve(txs.size());
  for (const Transaction& tx : txs) leaves.push_back(tx.txid());
  return merkle_root(leaves, threads);
}

bool hash_meets_target(const Hash256& hash, unsigned zero_bits) noexcept {
  unsigned checked = 0;
  for (std::uint8_t byte : hash) {
    if (checked + 8 <= zero_bits) {
      if (byte != 0) return false;
      checked += 8;
    } else if (checked < zero_bits) {
      const unsigned rem = zero_bits - checked;
      if (byte >> (8 - rem) != 0) return false;
      return true;
    } else {
      return true;
    }
  }
  return true;
}

bool solve_pow(BlockHeader& header) {
  for (std::uint64_t nonce = 0; nonce <= 0xffffffffULL; ++nonce) {
    header.nonce = static_cast<std::uint32_t>(nonce);
    if (hash_meets_target(header.hash(), header.target_zero_bits)) return true;
  }
  return false;
}

}  // namespace bcwan::chain

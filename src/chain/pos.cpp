#include "chain/pos.hpp"

#include <stdexcept>

#include "bignum/biguint.hpp"
#include "util/serial.hpp"

namespace bcwan::chain {

std::size_t scheduled_proposer(const std::vector<Validator>& validators,
                               const Hash256& prev, int height) {
  if (validators.empty())
    throw std::invalid_argument("scheduled_proposer: empty validator set");
  Amount total = 0;
  for (const Validator& v : validators) total += v.stake;
  if (total <= 0)
    throw std::invalid_argument("scheduled_proposer: no stake");

  // Slot seed: H(prev || height), reduced into [0, total).
  util::Writer w;
  w.bytes(util::ByteView(prev.data(), prev.size()));
  w.u32(static_cast<std::uint32_t>(height));
  const Hash256 seed = crypto::sha256d(w.data());
  const bignum::BigUint draw =
      bignum::BigUint::from_bytes_be(util::ByteView(seed.data(), seed.size())) %
      bignum::BigUint(static_cast<std::uint64_t>(total));
  Amount ticket = static_cast<Amount>(draw.to_u64());

  for (std::size_t i = 0; i < validators.size(); ++i) {
    if (ticket < validators[i].stake) return i;
    ticket -= validators[i].stake;
  }
  return validators.size() - 1;  // unreachable given the reduction above
}

util::Bytes pos_signing_message(const BlockHeader& header) {
  BlockHeader unsigned_header = header;
  unsigned_header.pos_signature.clear();
  return unsigned_header.serialize();
}

void pos_sign_block(BlockHeader& header, const crypto::EcKeyPair& key) {
  header.proposer_pubkey = crypto::ec_pubkey_encode(key.pub);
  header.pos_signature =
      crypto::ecdsa_sign(key.priv, pos_signing_message(header)).serialize();
}

bool pos_verify_block(const BlockHeader& header, const Validator& expected) {
  if (header.proposer_pubkey != expected.pubkey) return false;
  const auto pub = crypto::ec_pubkey_decode(header.proposer_pubkey);
  if (!pub) return false;
  const auto sig = crypto::EcdsaSignature::deserialize(header.pos_signature);
  if (!sig) return false;
  return crypto::ecdsa_verify(*pub, pos_signing_message(header), *sig);
}

}  // namespace bcwan::chain

// Transaction memory pool.
//
// Unconfirmed transactions wait here for the miner. The fair-exchange fast
// path (paper §6: "the foreign gateway [does] not wait for confirmation of
// the recipient transaction before providing the ephemeral private key")
// operates entirely at this level — the gateway reacts to the offer
// appearing in the mempool, and the recipient extracts eSk from the redeem
// transaction in the mempool, before either is mined.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/params.hpp"
#include "chain/transaction.hpp"
#include "chain/utxo.hpp"
#include "chain/validation.hpp"

namespace bcwan::chain {

enum class MempoolError {
  kOk,
  kAlreadyKnown,
  kConflict,       // double-spends an in-pool transaction
  kInvalid,        // failed validation
  kFeeTooLow,
};

std::string mempool_error_name(MempoolError err);

struct MempoolAcceptResult {
  MempoolError error = MempoolError::kOk;
  TxValidationResult validation;
  bool ok() const noexcept { return error == MempoolError::kOk; }
};

class Mempool {
 public:
  explicit Mempool(const ChainParams& params) : params_(params) {}

  /// Validate against the current UTXO set + in-pool spends and admit.
  /// `height` is the height the next block will have. In-pool parents are
  /// visible to children (chained unconfirmed spends are allowed).
  MempoolAcceptResult accept(const Transaction& tx, const CoinView& utxo,
                             int height);

  bool contains(const Hash256& txid) const {
    return txs_.find(txid) != txs_.end();
  }
  std::optional<Transaction> get(const Hash256& txid) const;
  std::size_t size() const noexcept { return txs_.size(); }

  /// Fee-descending selection for block assembly, respecting in-pool
  /// parent-before-child ordering and the block size budget.
  std::vector<Transaction> select_for_block(std::size_t max_bytes) const;

  /// Drop transactions confirmed by (or conflicting with) a new block.
  void remove_confirmed(const Block& block);

  /// Drop everything — a crashed node's pool does not survive the restart.
  void clear() {
    txs_.clear();
    spent_.clear();
    next_sequence_ = 0;
  }

  /// All transactions (observers/watchers iterate the pool).
  std::vector<Transaction> snapshot() const;

  /// Visit every pooled transaction in place — no copies. The callback must
  /// not mutate the pool.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [id, entry] : txs_) fn(entry.tx);
  }

  /// True if any in-pool transaction spends this outpoint.
  bool spends(const OutPoint& op) const {
    return spent_.find(op) != spent_.end();
  }

 private:
  // Takes the txid by value: callers pass references into spent_/txs_,
  // both of which this function erases from while recursing.
  void evict_with_descendants(Hash256 txid);

  struct Entry {
    Transaction tx;
    Amount fee = 0;
    std::size_t size = 0;
    std::uint64_t sequence = 0;  // admission order
  };

  const ChainParams& params_;
  std::unordered_map<Hash256, Entry, Hash256Hasher> txs_;
  std::unordered_map<OutPoint, Hash256, OutPointHasher> spent_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace bcwan::chain

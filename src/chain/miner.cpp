#include "chain/miner.hpp"

#include <stdexcept>

namespace bcwan::chain {

Block Miner::assemble(const Blockchain& chain, const Mempool& pool,
                      std::uint64_t time) const {
  const int new_height = chain.height() + 1;

  // Leave room for the coinbase.
  const std::size_t budget = params_.max_block_size - 1000;
  const std::vector<Transaction> candidates = pool.select_for_block(budget);

  // Re-validate the selection against a scratch chainstate and accumulate
  // fees; anything that no longer validates (e.g. its input got confirmed
  // elsewhere) is skipped.
  UtxoSet scratch = chain.utxo();
  std::vector<Transaction> included;
  Amount fees = 0;
  for (const Transaction& tx : candidates) {
    if (tx_filter_ && !tx_filter_(tx)) {
      ++censored_;
      continue;
    }
    const TxValidationResult result =
        check_tx_inputs(tx, scratch, new_height, params_);
    if (!result.ok()) continue;
    fees += result.fee;
    const Hash256 txid = tx.txid();
    for (const TxIn& in : tx.vin) scratch.spend(in.prevout);
    for (std::uint32_t v = 0; v < tx.vout.size(); ++v) {
      if (script::classify(tx.vout[v].script_pubkey).type ==
          script::ScriptType::kOpReturn) {
        continue;
      }
      scratch.add(OutPoint{txid, v}, Coin{tx.vout[v], new_height, false});
    }
    included.push_back(tx);
  }

  Block block;
  Transaction coinbase;
  TxIn in;
  in.prevout = coinbase_prevout();
  script::Script tag;
  tag.push_int(new_height);  // height makes every coinbase unique
  in.script_sig = tag;
  coinbase.vin.push_back(std::move(in));
  TxOut reward;
  reward.value = params_.block_reward + fees;
  reward.script_pubkey = script::make_p2pkh(reward_dest_);
  coinbase.vout.push_back(std::move(reward));

  block.txs.push_back(std::move(coinbase));
  block.txs.insert(block.txs.end(), included.begin(), included.end());
  block.header.prev_block = chain.tip_hash();
  block.header.merkle_root =
      compute_merkle_root(block.txs, params_.script_check_threads);
  block.header.time = time;
  block.header.target_zero_bits = params_.pow_zero_bits;
  return block;
}

bool Miner::is_scheduled(const Blockchain& chain) const {
  if (params_.consensus == ConsensusMode::kProofOfWork) return true;
  if (!pos_key_) return false;
  const std::size_t slot = scheduled_proposer(
      params_.validators, chain.tip_hash(), chain.height() + 1);
  return params_.validators[slot].pubkey ==
         crypto::ec_pubkey_encode(pos_key_->pub);
}

Block Miner::mine(const Blockchain& chain, const Mempool& pool,
                  std::uint64_t time) const {
  Block block = assemble(chain, pool, time);
  if (params_.consensus == ConsensusMode::kProofOfStake) {
    if (!pos_key_) throw std::logic_error("Miner: PoS key not set");
    if (!is_scheduled(chain))
      throw std::logic_error("Miner: not the scheduled slot leader");
    pos_sign_block(block.header, *pos_key_);
    return block;
  }
  if (!solve_pow(block.header))
    throw std::runtime_error("Miner: nonce space exhausted");
  return block;
}

}  // namespace bcwan::chain

#include "chain/utxo.hpp"

#include <algorithm>
#include <cstring>

#include "util/serial.hpp"

namespace bcwan::chain {

void write_coin(util::Writer& w, const OutPoint& op, const Coin& coin) {
  w.bytes(util::ByteView(op.txid.data(), op.txid.size()));
  w.u32(op.index);
  w.u64(static_cast<std::uint64_t>(coin.out.value));
  w.var_bytes(coin.out.script_pubkey.bytes());
  w.u32(static_cast<std::uint32_t>(coin.height));
  w.u8(coin.coinbase ? 1 : 0);
}

std::pair<OutPoint, Coin> read_coin(util::Reader& r) {
  OutPoint op;
  const util::Bytes txid = r.bytes(op.txid.size());
  std::copy(txid.begin(), txid.end(), op.txid.begin());
  op.index = r.u32();
  Coin coin;
  coin.out.value = static_cast<Amount>(r.u64());
  coin.out.script_pubkey = script::Script(r.var_bytes());
  coin.height = static_cast<int>(r.u32());
  coin.coinbase = r.u8() != 0;
  return {op, std::move(coin)};
}

namespace {

bool outpoint_less(const OutPoint& a, const OutPoint& b) {
  const int cmp = std::memcmp(a.txid.data(), b.txid.data(), a.txid.size());
  if (cmp != 0) return cmp < 0;
  return a.index < b.index;
}

}  // namespace

std::optional<Coin> UtxoSet::get(const OutPoint& op) const {
  const auto it = coins_.find(op);
  if (it == coins_.end()) return std::nullopt;
  return it->second;
}

void UtxoSet::add(const OutPoint& op, Coin coin) {
  if (journaling_) record_baseline(op);
  coins_[op] = std::move(coin);
}

std::optional<Coin> UtxoSet::spend(const OutPoint& op) {
  const auto it = coins_.find(op);
  if (it == coins_.end()) return std::nullopt;
  if (journaling_) record_baseline(op);
  Coin coin = std::move(it->second);
  coins_.erase(it);
  return coin;
}

void UtxoSet::record_baseline(const OutPoint& op) {
  if (baseline_.find(op) != baseline_.end()) return;
  const auto it = coins_.find(op);
  baseline_.emplace(op, it == coins_.end() ? std::optional<Coin>{}
                                           : std::optional<Coin>(it->second));
}

void UtxoSet::begin_journal() {
  journaling_ = true;
  baseline_.clear();
}

UtxoJournal UtxoSet::take_journal() {
  UtxoJournal out;
  for (const auto& [op, before] : baseline_) {
    const auto it = coins_.find(op);
    const bool exists = it != coins_.end();
    const bool changed = !before || !exists || !(it->second == *before);
    if (before && (!exists || changed)) out.spent.push_back(op);
    if (exists && changed) out.added.emplace_back(op, it->second);
  }
  baseline_.clear();
  // Canonical order so two identical windows serialize identically.
  std::sort(out.spent.begin(), out.spent.end(), outpoint_less);
  std::sort(out.added.begin(), out.added.end(),
            [](const auto& a, const auto& b) {
              return outpoint_less(a.first, b.first);
            });
  return out;
}

std::vector<std::pair<OutPoint, Coin>> UtxoSet::find_by_script(
    const script::Script& script) const {
  std::vector<std::pair<OutPoint, Coin>> out;
  for (const auto& [op, coin] : coins_) {
    if (coin.out.script_pubkey == script) out.emplace_back(op, coin);
  }
  return out;
}

Amount UtxoSet::total_value() const {
  Amount total = 0;
  for (const auto& [op, coin] : coins_) total += coin.out.value;
  return total;
}

util::Bytes UtxoSet::serialize() const {
  std::vector<const std::pair<const OutPoint, Coin>*> sorted;
  sorted.reserve(coins_.size());
  for (const auto& entry : coins_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) {
              return outpoint_less(a->first, b->first);
            });
  util::Writer w;
  w.varint(sorted.size());
  for (const auto* entry : sorted) write_coin(w, entry->first, entry->second);
  return w.take();
}

std::optional<UtxoSet> UtxoSet::deserialize(util::ByteView data) {
  try {
    util::Reader r(data);
    UtxoSet set;
    const std::uint64_t count = r.varint();
    set.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      auto [op, coin] = read_coin(r);
      set.coins_.emplace(op, std::move(coin));
    }
    r.expect_done();
    if (set.coins_.size() != count) return std::nullopt;  // duplicate entry
    return set;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

Hash256 UtxoSet::state_hash() const { return crypto::sha256d(serialize()); }

}  // namespace bcwan::chain

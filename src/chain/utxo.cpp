#include "chain/utxo.hpp"

namespace bcwan::chain {

std::optional<Coin> UtxoSet::get(const OutPoint& op) const {
  const auto it = coins_.find(op);
  if (it == coins_.end()) return std::nullopt;
  return it->second;
}

void UtxoSet::add(const OutPoint& op, Coin coin) {
  coins_[op] = std::move(coin);
}

std::optional<Coin> UtxoSet::spend(const OutPoint& op) {
  const auto it = coins_.find(op);
  if (it == coins_.end()) return std::nullopt;
  Coin coin = std::move(it->second);
  coins_.erase(it);
  return coin;
}

std::vector<std::pair<OutPoint, Coin>> UtxoSet::find_by_script(
    const script::Script& script) const {
  std::vector<std::pair<OutPoint, Coin>> out;
  for (const auto& [op, coin] : coins_) {
    if (coin.out.script_pubkey == script) out.emplace_back(op, coin);
  }
  return out;
}

Amount UtxoSet::total_value() const {
  Amount total = 0;
  for (const auto& [op, coin] : coins_) total += coin.out.value;
  return total;
}

}  // namespace bcwan::chain

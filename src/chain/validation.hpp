// Consensus validation: stateless transaction checks, contextual input
// checks (UTXO existence, maturity, script execution, locktime) and block
// connection with undo data.
#pragma once

#include <string>
#include <vector>

#include "chain/block.hpp"
#include "chain/checkqueue.hpp"
#include "chain/params.hpp"
#include "chain/transaction.hpp"
#include "chain/utxo.hpp"

namespace bcwan::chain {

enum class TxError {
  kOk,
  kNoInputs,
  kNoOutputs,
  kOversized,
  kNegativeOutput,
  kOutputTooLarge,
  kDuplicateInput,
  kBadCoinbase,
  kOpReturnTooLarge,
  kMissingInput,
  kImmatureCoinbase,
  kInputValueOutOfRange,
  kFeeNegative,
  kLocktimeNotReached,
  kScriptFailed,
};

std::string tx_error_name(TxError err);

struct TxValidationResult {
  TxError error = TxError::kOk;
  script::ScriptError script_error = script::ScriptError::kOk;
  Amount fee = 0;

  bool ok() const noexcept { return error == TxError::kOk; }
};

/// Context-free checks (shape, sizes, value ranges, duplicate inputs).
TxValidationResult check_transaction(const Transaction& tx,
                                     const ChainParams& params);

/// Contextual checks against a coin view, assuming the transaction would
/// confirm at `height`. Does NOT mutate the view. Coinbases are rejected
/// here (they are only valid as the first transaction of a block).
///
/// Script execution is the expensive tail: when `deferred_checks` is null
/// the input scripts run inline (mempool admission); when non-null the
/// scripts are appended as ScriptChecks tagged with `tx_index` for the
/// caller to batch across the check queue (connect_block), and the returned
/// result covers only the contextual checks. Either way, a transaction the
/// script-execution cache already knows skips script work entirely.
///
/// `precomp`, when supplied, must be built from `tx`; the script checks
/// (inline or deferred) then take the midstate sighash fast path.
TxValidationResult check_tx_inputs(const Transaction& tx, const CoinView& utxo,
                                   int height, const ChainParams& params,
                                   std::vector<ScriptCheck>* deferred_checks =
                                       nullptr,
                                   std::size_t tx_index = 0,
                                   const PrecomputedTxData* precomp = nullptr);

enum class BlockError {
  kOk,
  kEmpty,
  kOversized,
  kBadPow,
  kBadMerkleRoot,
  kFirstTxNotCoinbase,
  kMultipleCoinbases,
  kBadTransaction,
  kBadCoinbaseValue,
  kDoubleSpendInBlock,
  kBadProposer,  // PoS: wrong slot leader or bad header signature
  kMinerNotPermitted,  // permissioned chain: coinbase pays an outsider
};

std::string block_error_name(BlockError err);

struct BlockValidationResult {
  BlockError error = BlockError::kOk;
  TxValidationResult tx_failure;   // set when error == kBadTransaction
  std::size_t failed_tx_index = 0;

  bool ok() const noexcept { return error == BlockError::kOk; }
};

/// Per-block undo record: what connect_block spent and created.
struct BlockUndo {
  std::vector<std::pair<OutPoint, Coin>> spent;
  std::vector<OutPoint> created;

  friend bool operator==(const BlockUndo&, const BlockUndo&) = default;
};

/// Undo serialization (block-log records and chainstate snapshots).
void write_undo(util::Writer& w, const BlockUndo& undo);
/// Throws util::DeserializeError on malformed input.
BlockUndo read_undo(util::Reader& r);

/// Structure-only checks (PoW, merkle root, coinbase placement, size).
BlockValidationResult check_block(const Block& block,
                                  const ChainParams& params);

/// Full contextual validation; on success the UTXO set is updated and
/// `undo` describes how to roll it back. On failure the set is untouched.
/// `verify_scripts = false` skips input-script execution — the store's
/// trusted replay path, where every block was fully validated before it
/// reached the CRC-protected log; all contextual checks (maturity, fees,
/// missing inputs, double spends) still run.
BlockValidationResult connect_block(const Block& block, UtxoSet& utxo,
                                    int height, const ChainParams& params,
                                    BlockUndo& undo,
                                    bool verify_scripts = true);

/// Re-apply a block's recorded UTXO delta with no validation at all — the
/// replay fast path for log records that carry their undo. Spends exactly
/// `undo.spent`, re-creates exactly `undo.created` (coin data rebuilt from
/// the block's outputs at `height`). The caller owns integrity (the log's
/// CRC) and ordering (records replay in append order).
void apply_block_from_undo(const Block& block, const BlockUndo& undo,
                           UtxoSet& utxo, int height);

/// Roll a connected block back out of the UTXO set.
void disconnect_block(const BlockUndo& undo, UtxoSet& utxo);

}  // namespace bcwan::chain

#include "chain/wallet.hpp"

#include <algorithm>

#include "crypto/base58.hpp"

namespace bcwan::chain {

std::string encode_address(const script::PubKeyHash& pkh) {
  return crypto::base58check_encode(kAddressVersion,
                                    util::ByteView(pkh.data(), pkh.size()));
}

std::optional<script::PubKeyHash> decode_address(const std::string& address) {
  const auto decoded = crypto::base58check_decode(address);
  if (!decoded || decoded->version != kAddressVersion ||
      decoded->payload.size() != 20) {
    return std::nullopt;
  }
  script::PubKeyHash pkh;
  std::copy(decoded->payload.begin(), decoded->payload.end(), pkh.begin());
  return pkh;
}

Wallet::Wallet(crypto::EcKeyPair identity) : identity_(std::move(identity)) {
  pubkey_ = crypto::ec_pubkey_encode(identity_.pub);
  pkh_ = script::to_pubkey_hash(pubkey_);
  address_ = encode_address(pkh_);
  own_script_ = script::make_p2pkh(pkh_);
}

Wallet Wallet::from_seed(std::string_view name) {
  return Wallet(crypto::ec_from_seed(util::str_bytes(name)));
}

std::vector<std::pair<OutPoint, Coin>> Wallet::spendable(
    const Blockchain& chain, const Mempool* pool) const {
  auto coins = chain.utxo().find_by_script(own_script_);
  std::erase_if(coins, [&](const std::pair<OutPoint, Coin>& entry) {
    const auto& [op, coin] = entry;
    if (coin.coinbase &&
        chain.height() + 1 - coin.height < chain.params().coinbase_maturity) {
      return true;
    }
    return pool != nullptr && pool->spends(op);
  });
  // Own unconfirmed outputs (change waiting in the mempool) are spendable
  // too — otherwise a wallet with one UTXO deadlocks on concurrent offers.
  if (pool != nullptr) {
    for (const Transaction& tx : pool->snapshot()) {
      const Hash256 txid = tx.txid();
      for (std::uint32_t v = 0; v < tx.vout.size(); ++v) {
        if (!(tx.vout[v].script_pubkey == own_script_)) continue;
        const OutPoint op{txid, v};
        if (pool->spends(op)) continue;
        coins.emplace_back(op, Coin{tx.vout[v], chain.height() + 1, false});
      }
    }
  }
  std::sort(coins.begin(), coins.end(),
            [](const auto& a, const auto& b) {
              if (a.second.out.value != b.second.out.value)
                return a.second.out.value > b.second.out.value;
              return a.first.index < b.first.index;
            });
  return coins;
}

Amount Wallet::balance(const Blockchain& chain, const Mempool* pool) const {
  Amount total = 0;
  for (const auto& [op, coin] : spendable(chain, pool))
    total += coin.out.value;
  return total;
}

std::optional<Wallet::Funding> Wallet::select_coins(const Blockchain& chain,
                                                    const Mempool* pool,
                                                    Amount target) const {
  Funding funding;
  for (auto& entry : spendable(chain, pool)) {
    funding.total += entry.second.out.value;
    funding.inputs.push_back(std::move(entry));
    if (funding.total >= target) return funding;
  }
  return std::nullopt;
}

Transaction Wallet::build_and_sign(const Funding& funding,
                                   std::vector<TxOut> outputs,
                                   Amount change) const {
  Transaction tx;
  for (const auto& [op, coin] : funding.inputs) {
    TxIn in;
    in.prevout = op;
    tx.vin.push_back(std::move(in));
  }
  tx.vout = std::move(outputs);
  if (change > 0) {
    TxOut back;
    back.value = change;
    back.script_pubkey = own_script_;
    tx.vout.push_back(std::move(back));
  }
  // One midstate set serves every input: the sighash template ignores
  // scriptSigs, so signatures landing in earlier inputs don't stale it.
  const PrecomputedTxData precomp(tx);
  for (std::size_t i = 0; i < tx.vin.size(); ++i) {
    sign_p2pkh_input(tx, i, funding.inputs[i].second.out.script_pubkey,
                     &precomp);
  }
  return tx;
}

void Wallet::sign_p2pkh_input(Transaction& tx, std::size_t index,
                              const script::Script& spent_script,
                              const PrecomputedTxData* precomp) const {
  const crypto::Digest256 digest =
      precomp ? precomp->sighash(index, spent_script)
              : crypto::sha256d(
                    signature_hash_message(tx, index, spent_script));
  const crypto::EcdsaSignature sig =
      crypto::ecdsa_sign_digest(identity_.priv, digest);
  tx.vin[index].script_sig =
      script::make_p2pkh_scriptsig(sig.serialize(), pubkey_);
  tx.invalidate_txid();
}

std::optional<Transaction> Wallet::create_payment(
    const Blockchain& chain, const Mempool* pool,
    const script::PubKeyHash& dest, Amount amount, Amount fee) const {
  const auto funding = select_coins(chain, pool, amount + fee);
  if (!funding) return std::nullopt;
  TxOut out;
  out.value = amount;
  out.script_pubkey = script::make_p2pkh(dest);
  return build_and_sign(*funding, {std::move(out)},
                        funding->total - amount - fee);
}

std::optional<Transaction> Wallet::create_announcement(const Blockchain& chain,
                                                       const Mempool* pool,
                                                       util::ByteView data,
                                                       Amount fee) const {
  const auto funding = select_coins(chain, pool, fee);
  if (!funding) return std::nullopt;
  TxOut out;
  out.value = 0;
  out.script_pubkey = script::make_op_return(data);
  return build_and_sign(*funding, {std::move(out)}, funding->total - fee);
}

std::optional<Transaction> Wallet::create_key_release_offer(
    const Blockchain& chain, const Mempool* pool,
    const crypto::RsaPublicKey& ephemeral_pub,
    const script::PubKeyHash& gateway, Amount amount, Amount fee,
    std::int64_t timeout_height) const {
  const auto funding = select_coins(chain, pool, amount + fee);
  if (!funding) return std::nullopt;
  TxOut out;
  out.value = amount;
  out.script_pubkey =
      script::make_key_release(ephemeral_pub, gateway, pkh_, timeout_height);
  return build_and_sign(*funding, {std::move(out)},
                        funding->total - amount - fee);
}

Transaction Wallet::create_redeem(const OutPoint& offer_outpoint,
                                  const TxOut& offer_out,
                                  const crypto::RsaPrivateKey& ephemeral_priv,
                                  Amount fee) const {
  Transaction tx;
  TxIn in;
  in.prevout = offer_outpoint;
  tx.vin.push_back(std::move(in));
  TxOut out;
  out.value = offer_out.value - fee;
  out.script_pubkey = own_script_;
  tx.vout.push_back(std::move(out));

  const util::Bytes message =
      signature_hash_message(tx, 0, offer_out.script_pubkey);
  const crypto::EcdsaSignature sig =
      crypto::ecdsa_sign(identity_.priv, message);
  tx.vin[0].script_sig = script::make_key_release_redeem(
      sig.serialize(), pubkey_, ephemeral_priv);
  tx.invalidate_txid();
  return tx;
}

Transaction Wallet::create_reclaim(const OutPoint& offer_outpoint,
                                   const TxOut& offer_out,
                                   std::int64_t timeout_height,
                                   Amount fee) const {
  Transaction tx;
  tx.locktime = static_cast<std::uint32_t>(timeout_height);
  TxIn in;
  in.prevout = offer_outpoint;
  in.sequence = kSequenceFinal - 1;  // enable locktime semantics
  tx.vin.push_back(std::move(in));
  TxOut out;
  out.value = offer_out.value - fee;
  out.script_pubkey = own_script_;
  tx.vout.push_back(std::move(out));

  const util::Bytes message =
      signature_hash_message(tx, 0, offer_out.script_pubkey);
  const crypto::EcdsaSignature sig =
      crypto::ecdsa_sign(identity_.priv, message);
  tx.vin[0].script_sig =
      script::make_key_release_reclaim(sig.serialize(), pubkey_);
  tx.invalidate_txid();
  return tx;
}

}  // namespace bcwan::chain

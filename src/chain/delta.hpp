// Incremental chainstate deltas.
//
// A StateDelta is the net change between two snapshot elements: the blocks
// stored since the parent element, an active-chain edit (pop the losing
// tail, push the winning branch with its undo data) and the net UTXO diff
// from the UtxoSet journal. Applying a base snapshot plus its delta chain
// reproduces exactly the state a full snapshot would have captured — at
// O(blocks changed) serialization cost instead of O(UTXO set).
//
// Collection and application live on Blockchain (collect_state_delta /
// apply_state_delta); this header owns the wire format.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/block.hpp"
#include "chain/utxo.hpp"
#include "chain/validation.hpp"

namespace bcwan::chain {

struct StateDelta {
  /// Log seq of the parent snapshot element this delta extends, and the
  /// first seq NOT covered after applying it (mirrors snapshot next_seq).
  std::uint64_t parent_seq = 0;
  std::uint64_t next_seq = 0;

  /// Blocks stored since the parent element, in storage order (parents
  /// before children — the block-sink ordering guarantee).
  struct NewBlock {
    Block block;
    int height = 0;
  };
  std::vector<NewBlock> new_blocks;

  /// Active-chain edit relative to the parent element's tip: remove `pop`
  /// hashes, then append `push` (each with the undo data it connected
  /// with, so the restored chain can still disconnect it later).
  std::uint32_t pop = 0;
  struct PushedBlock {
    Hash256 hash{};
    BlockUndo undo;
  };
  std::vector<PushedBlock> push;

  /// Net UTXO edit over the window, canonically sorted by outpoint.
  std::vector<OutPoint> spent;
  std::vector<std::pair<OutPoint, Coin>> added;

  /// Post-apply consistency check.
  int tip_height = -1;
  Hash256 tip_hash{};
};

util::Bytes encode_state_delta(const StateDelta& delta);
/// std::nullopt on malformed bytes (version mismatch, truncation, trailing
/// garbage). CRC integrity is the store framing's job.
std::optional<StateDelta> decode_state_delta(util::ByteView data);

}  // namespace bcwan::chain

#include "chain/delta.hpp"

#include "util/serial.hpp"

namespace bcwan::chain {
namespace {

constexpr std::uint32_t kDeltaVersion = 1;

void write_hash(util::Writer& w, const Hash256& h) {
  w.bytes(util::ByteView(h.data(), h.size()));
}

Hash256 read_hash(util::Reader& r) {
  Hash256 h{};
  const util::ByteView raw = r.view(h.size());
  std::copy(raw.begin(), raw.end(), h.begin());
  return h;
}

void write_outpoint(util::Writer& w, const OutPoint& op) {
  write_hash(w, op.txid);
  w.u32(op.index);
}

OutPoint read_outpoint(util::Reader& r) {
  OutPoint op;
  op.txid = read_hash(r);
  op.index = r.u32();
  return op;
}

}  // namespace

util::Bytes encode_state_delta(const StateDelta& d) {
  util::Writer w;
  w.u32(kDeltaVersion);
  w.u64(d.parent_seq);
  w.u64(d.next_seq);
  w.varint(d.new_blocks.size());
  for (const StateDelta::NewBlock& nb : d.new_blocks) {
    w.var_bytes(nb.block.serialize());
    w.u32(static_cast<std::uint32_t>(nb.height));
  }
  w.u32(d.pop);
  w.varint(d.push.size());
  for (const StateDelta::PushedBlock& p : d.push) {
    write_hash(w, p.hash);
    util::Writer undo_w;
    write_undo(undo_w, p.undo);
    w.var_bytes(undo_w.data());
  }
  w.varint(d.spent.size());
  for (const OutPoint& op : d.spent) write_outpoint(w, op);
  w.varint(d.added.size());
  for (const auto& [op, coin] : d.added) write_coin(w, op, coin);
  w.u32(static_cast<std::uint32_t>(d.tip_height));
  write_hash(w, d.tip_hash);
  return w.take();
}

std::optional<StateDelta> decode_state_delta(util::ByteView data) {
  try {
    util::Reader r(data);
    if (r.u32() != kDeltaVersion) return std::nullopt;
    StateDelta d;
    d.parent_seq = r.u64();
    d.next_seq = r.u64();
    const std::uint64_t block_count = r.varint();
    d.new_blocks.reserve(static_cast<std::size_t>(block_count));
    for (std::uint64_t i = 0; i < block_count; ++i) {
      auto block = Block::deserialize(r.var_view());
      if (!block) return std::nullopt;
      StateDelta::NewBlock nb;
      nb.block = *std::move(block);
      nb.height = static_cast<int>(r.u32());
      d.new_blocks.push_back(std::move(nb));
    }
    d.pop = r.u32();
    const std::uint64_t push_count = r.varint();
    d.push.reserve(static_cast<std::size_t>(push_count));
    for (std::uint64_t i = 0; i < push_count; ++i) {
      StateDelta::PushedBlock p;
      p.hash = read_hash(r);
      util::Reader undo_r(r.var_view());
      p.undo = read_undo(undo_r);
      undo_r.expect_done();
      d.push.push_back(std::move(p));
    }
    const std::uint64_t spent_count = r.varint();
    d.spent.reserve(static_cast<std::size_t>(spent_count));
    for (std::uint64_t i = 0; i < spent_count; ++i)
      d.spent.push_back(read_outpoint(r));
    const std::uint64_t added_count = r.varint();
    d.added.reserve(static_cast<std::size_t>(added_count));
    for (std::uint64_t i = 0; i < added_count; ++i)
      d.added.push_back(read_coin(r));
    d.tip_height = static_cast<int>(r.u32());
    d.tip_hash = read_hash(r);
    r.expect_done();
    return d;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

}  // namespace bcwan::chain

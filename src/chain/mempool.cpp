#include "chain/mempool.hpp"

#include <algorithm>

#include "script/templates.hpp"
#include "telemetry/metrics.hpp"

namespace bcwan::chain {

namespace {

// Node-level gauge: with several simulated nodes in one process this holds
// the most recently updated node's depth (DESIGN.md §10).
void telemetry_note_depth(std::size_t depth, MempoolError error) {
  if (!telemetry::enabled()) return;
  auto& reg = telemetry::registry();
  reg.gauge("bcwan_chain_mempool_depth",
            "Transactions in the most recently updated mempool")
      .set(static_cast<double>(depth));
  reg.counter("bcwan_chain_mempool_accepts_total", "result",
              error == MempoolError::kOk ? "accepted" : "rejected",
              "Mempool admission attempts by outcome")
      .add();
}

}  // namespace

std::string mempool_error_name(MempoolError err) {
  switch (err) {
    case MempoolError::kOk: return "ok";
    case MempoolError::kAlreadyKnown: return "already-known";
    case MempoolError::kConflict: return "conflict";
    case MempoolError::kInvalid: return "invalid";
    case MempoolError::kFeeTooLow: return "fee-too-low";
  }
  return "unknown";
}

MempoolAcceptResult Mempool::accept(const Transaction& tx, const CoinView& utxo,
                                    int height) {
  MempoolAcceptResult result;
  // Records the admission outcome and post-call depth on every return path.
  struct TelemetryNote {
    const Mempool& pool;
    const MempoolAcceptResult& result;
    ~TelemetryNote() { telemetry_note_depth(pool.size(), result.error); }
  } telemetry_note{*this, result};
  const Hash256 txid = tx.txid();
  if (txs_.find(txid) != txs_.end()) {
    result.error = MempoolError::kAlreadyKnown;
    return result;
  }
  for (const TxIn& in : tx.vin) {
    if (spent_.find(in.prevout) != spent_.end()) {
      result.error = MempoolError::kConflict;
      return result;
    }
  }

  // Layered view: in-pool outputs are spendable (so the redeem tx can spend
  // the unconfirmed offer tx), in-pool-spent outpoints are not, and
  // everything else falls through to the chainstate.
  class PoolView : public CoinView {
   public:
    PoolView(const Mempool& pool, const CoinView& base, int height)
        : pool_(pool), base_(base), height_(height) {}
    std::optional<Coin> get(const OutPoint& op) const override {
      if (pool_.spent_.find(op) != pool_.spent_.end()) return std::nullopt;
      const auto parent = pool_.txs_.find(op.txid);
      if (parent != pool_.txs_.end()) {
        if (op.index >= parent->second.tx.vout.size()) return std::nullopt;
        const TxOut& out = parent->second.tx.vout[op.index];
        if (script::classify(out.script_pubkey).type ==
            script::ScriptType::kOpReturn) {
          return std::nullopt;
        }
        return Coin{out, height_, false};
      }
      return base_.get(op);
    }

   private:
    const Mempool& pool_;
    const CoinView& base_;
    int height_;
  };

  const PoolView view(*this, utxo, height);
  result.validation = check_tx_inputs(tx, view, height, params_);
  if (!result.validation.ok()) {
    result.error = MempoolError::kInvalid;
    return result;
  }
  if (result.validation.fee < params_.min_tx_fee) {
    result.error = MempoolError::kFeeTooLow;
    return result;
  }

  Entry entry{tx, result.validation.fee, tx.serialize().size(),
              next_sequence_++};
  for (const TxIn& in : tx.vin) spent_[in.prevout] = txid;
  txs_.emplace(txid, std::move(entry));
  return result;
}

std::optional<Transaction> Mempool::get(const Hash256& txid) const {
  const auto it = txs_.find(txid);
  if (it == txs_.end()) return std::nullopt;
  return it->second.tx;
}

std::vector<Transaction> Mempool::select_for_block(
    std::size_t max_bytes) const {
  // Sort by fee rate descending, then admission order for stability.
  std::vector<const Entry*> entries;
  entries.reserve(txs_.size());
  for (const auto& [id, entry] : txs_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) {
              const double ra = static_cast<double>(a->fee) /
                                static_cast<double>(a->size);
              const double rb = static_cast<double>(b->fee) /
                                static_cast<double>(b->size);
              if (ra != rb) return ra > rb;
              return a->sequence < b->sequence;
            });

  std::vector<Transaction> selected;
  std::unordered_map<Hash256, bool, Hash256Hasher> included;
  std::size_t used = 0;

  // Multiple passes so children land after their in-pool parents.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const Entry* entry : entries) {
      const Hash256 txid = entry->tx.txid();
      if (included.count(txid)) continue;
      if (used + entry->size > max_bytes) continue;
      // All in-pool parents must already be selected.
      bool parents_ok = true;
      for (const TxIn& in : entry->tx.vin) {
        const auto parent = txs_.find(in.prevout.txid);
        if (parent != txs_.end() && !included.count(in.prevout.txid)) {
          parents_ok = false;
          break;
        }
      }
      if (!parents_ok) continue;
      selected.push_back(entry->tx);
      included[txid] = true;
      used += entry->size;
      progressed = true;
    }
  }
  return selected;
}

void Mempool::evict_with_descendants(Hash256 txid) {
  const auto it = txs_.find(txid);
  if (it == txs_.end()) return;
  const Transaction tx = it->second.tx;
  for (const TxIn& in : tx.vin) spent_.erase(in.prevout);
  txs_.erase(it);
  // Children spending this tx's outputs are now orphaned; evict them too.
  for (std::uint32_t v = 0; v < tx.vout.size(); ++v) {
    const auto child = spent_.find(OutPoint{txid, v});
    if (child != spent_.end()) evict_with_descendants(child->second);
  }
}

void Mempool::remove_confirmed(const Block& block) {
  for (const Transaction& tx : block.txs) {
    const Hash256 txid = tx.txid();
    // Remove the confirmed transaction itself (its children stay: their
    // parent is now on-chain).
    const auto it = txs_.find(txid);
    if (it != txs_.end()) {
      for (const TxIn& in : it->second.tx.vin) spent_.erase(in.prevout);
      txs_.erase(it);
    }
    // Evict in-pool conflicts (transactions double-spending an outpoint the
    // block consumed) and their descendants — this is how a victim mempool
    // observes a successful double-spend attack: its offer AND the redeem
    // built on it vanish together.
    if (tx.is_coinbase()) continue;
    for (const TxIn& in : tx.vin) {
      const auto spender = spent_.find(in.prevout);
      if (spender == spent_.end()) continue;
      evict_with_descendants(spender->second);
    }
  }
  if (telemetry::enabled()) {
    telemetry::registry()
        .gauge("bcwan_chain_mempool_depth",
               "Transactions in the most recently updated mempool")
        .set(static_cast<double>(size()));
  }
}

std::vector<Transaction> Mempool::snapshot() const {
  std::vector<Transaction> out;
  out.reserve(txs_.size());
  for (const auto& [id, entry] : txs_) out.push_back(entry.tx);
  return out;
}

}  // namespace bcwan::chain

// Proof-of-Stake consensus (the paper's §6 extension direction).
//
// "The Proof-of-Work is not suitable for edge nodes to run the blockchain
// as this is a computational power based method of election. Other methods
// such as Proof-of-stake [Ouroboros] do not rely on computational power and
// thus can help to further close the gap of the blockchain to the edge
// nodes."
//
// The scheme here is a slot-leader schedule in the spirit of Ouroboros: a
// fixed validator set with stake weights; the proposer for height h is
// drawn deterministically from H(prev_block_hash || h), weighted by stake.
// A proposer signs the block header (ECDSA, the same curve as transaction
// signatures); anyone can check the signature and recompute the schedule.
// No hash grinding is involved anywhere — producing a block costs one
// signature, which is what makes it edge-viable.
#pragma once

#include <vector>

#include "chain/block.hpp"
#include "crypto/ecdsa.hpp"

namespace bcwan::chain {

/// Index of the validator scheduled to propose the block at `height` whose
/// parent is `prev`. Deterministic, stake-weighted. Requires a non-empty
/// set with positive total stake.
std::size_t scheduled_proposer(const std::vector<Validator>& validators,
                               const Hash256& prev, int height);

/// The message a proposer signs: the header serialized with the signature
/// field blanked (the proposer pubkey IS covered, so a signature cannot be
/// transplanted onto another identity).
util::Bytes pos_signing_message(const BlockHeader& header);

/// Fill in proposer_pubkey + pos_signature.
void pos_sign_block(BlockHeader& header, const crypto::EcKeyPair& key);

/// Verify that the header is signed by `expected` (schedule lookup is the
/// caller's job — it needs chain context for the height).
bool pos_verify_block(const BlockHeader& header, const Validator& expected);

}  // namespace bcwan::chain

#include "chain/sigcache.hpp"

#include <mutex>
#include <random>

#include "crypto/sha256.hpp"
#include "telemetry/metrics.hpp"
#include "util/serial.hpp"

namespace bcwan::chain {

VerifyCache::VerifyCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {
  std::random_device rd;
  for (std::size_t i = 0; i < salt_.size(); i += 4) {
    const std::uint32_t word = rd();
    salt_[i] = static_cast<std::uint8_t>(word);
    salt_[i + 1] = static_cast<std::uint8_t>(word >> 8);
    salt_[i + 2] = static_cast<std::uint8_t>(word >> 16);
    salt_[i + 3] = static_cast<std::uint8_t>(word >> 24);
  }
}

Hash256 VerifyCache::key(std::initializer_list<util::ByteView> parts) const {
  util::Writer w;
  w.bytes(util::ByteView(salt_.data(), salt_.size()));
  for (const util::ByteView part : parts) w.var_bytes(part);
  return crypto::sha256(w.data());
}

bool VerifyCache::contains(const Hash256& k) const {
  if (!enabled()) return false;
  bool found;
  {
    std::shared_lock lock(mutex_);
    found = entries_.find(k) != entries_.end();
  }
  (found ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  return found;
}

void VerifyCache::insert(const Hash256& k) {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  if (entries_.size() >= max_entries_) {
    // Evict a batch in hash order — effectively random keys, and amortized
    // so the hot path never evicts one-by-one under the write lock.
    std::size_t to_drop = max_entries_ / 16 + 1;
    for (auto it = entries_.begin(); it != entries_.end() && to_drop > 0;
         --to_drop) {
      it = entries_.erase(it);
    }
  }
  entries_.insert(k);
}

void VerifyCache::clear() {
  std::unique_lock lock(mutex_);
  entries_.clear();
  hits_.store(0);
  misses_.store(0);
}

std::size_t VerifyCache::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

namespace {

// Bridges a process-lifetime cache's hit/miss counters into gauges at export
// time; the contains() hot path stays untouched. Registered once per cache
// from the accessor below (the caches are leaked statics, so the captured
// reference never dangles).
void register_cache_collector(const char* name, const VerifyCache& cache) {
  if (!telemetry::compiled_in()) return;
  telemetry::registry().add_collector([name, &cache] {
    auto& reg = telemetry::registry();
    const double hits = static_cast<double>(cache.hits());
    const double misses = static_cast<double>(cache.misses());
    reg.gauge("bcwan_chain_cache_hits", "cache", name,
              "Lookup hits per verification cache")
        .set(hits);
    reg.gauge("bcwan_chain_cache_misses", "cache", name,
              "Lookup misses per verification cache")
        .set(misses);
    reg.gauge("bcwan_chain_cache_hit_rate", "cache", name,
              "hits / (hits + misses) per verification cache")
        .set(hits + misses > 0.0 ? hits / (hits + misses) : 0.0);
    reg.gauge("bcwan_chain_cache_entries", "cache", name,
              "Resident entries per verification cache")
        .set(static_cast<double>(cache.size()));
  });
}

}  // namespace

VerifyCache& sig_cache() {
  static VerifyCache cache(1 << 18);
  static const bool telemetry_registered =
      (register_cache_collector("sig", cache), true);
  (void)telemetry_registered;
  return cache;
}

VerifyCache& script_exec_cache() {
  static VerifyCache cache(1 << 17);
  static const bool telemetry_registered =
      (register_cache_collector("script_exec", cache), true);
  (void)telemetry_registered;
  return cache;
}

Hash256 script_exec_key(const Hash256& txid) {
  return script_exec_cache().key(
      {util::ByteView(txid.data(), txid.size())});
}

}  // namespace bcwan::chain

#include "chain/validation.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "chain/sigcache.hpp"
#include "script/templates.hpp"
#include "util/serial.hpp"

namespace bcwan::chain {

void write_undo(util::Writer& w, const BlockUndo& undo) {
  w.varint(undo.spent.size());
  for (const auto& [op, coin] : undo.spent) write_coin(w, op, coin);
  w.varint(undo.created.size());
  for (const OutPoint& op : undo.created) {
    w.bytes(util::ByteView(op.txid.data(), op.txid.size()));
    w.u32(op.index);
  }
}

BlockUndo read_undo(util::Reader& r) {
  BlockUndo undo;
  const std::uint64_t spent = r.varint();
  undo.spent.reserve(static_cast<std::size_t>(spent));
  for (std::uint64_t i = 0; i < spent; ++i) undo.spent.push_back(read_coin(r));
  const std::uint64_t created = r.varint();
  undo.created.reserve(static_cast<std::size_t>(created));
  for (std::uint64_t i = 0; i < created; ++i) {
    OutPoint op;
    const util::Bytes txid = r.bytes(op.txid.size());
    std::copy(txid.begin(), txid.end(), op.txid.begin());
    op.index = r.u32();
    undo.created.push_back(op);
  }
  return undo;
}

std::string tx_error_name(TxError err) {
  switch (err) {
    case TxError::kOk: return "ok";
    case TxError::kNoInputs: return "no-inputs";
    case TxError::kNoOutputs: return "no-outputs";
    case TxError::kOversized: return "oversized";
    case TxError::kNegativeOutput: return "negative-output";
    case TxError::kOutputTooLarge: return "output-too-large";
    case TxError::kDuplicateInput: return "duplicate-input";
    case TxError::kBadCoinbase: return "bad-coinbase";
    case TxError::kOpReturnTooLarge: return "op-return-too-large";
    case TxError::kMissingInput: return "missing-input";
    case TxError::kImmatureCoinbase: return "immature-coinbase";
    case TxError::kInputValueOutOfRange: return "input-value-out-of-range";
    case TxError::kFeeNegative: return "fee-negative";
    case TxError::kLocktimeNotReached: return "locktime-not-reached";
    case TxError::kScriptFailed: return "script-failed";
  }
  return "unknown";
}

std::string block_error_name(BlockError err) {
  switch (err) {
    case BlockError::kOk: return "ok";
    case BlockError::kEmpty: return "empty";
    case BlockError::kOversized: return "oversized";
    case BlockError::kBadPow: return "bad-pow";
    case BlockError::kBadMerkleRoot: return "bad-merkle-root";
    case BlockError::kFirstTxNotCoinbase: return "first-tx-not-coinbase";
    case BlockError::kMultipleCoinbases: return "multiple-coinbases";
    case BlockError::kBadTransaction: return "bad-transaction";
    case BlockError::kBadCoinbaseValue: return "bad-coinbase-value";
    case BlockError::kDoubleSpendInBlock: return "double-spend-in-block";
    case BlockError::kBadProposer: return "bad-proposer";
    case BlockError::kMinerNotPermitted: return "miner-not-permitted";
  }
  return "unknown";
}

TxValidationResult check_transaction(const Transaction& tx,
                                     const ChainParams& params) {
  TxValidationResult result;
  auto fail = [&result](TxError err) {
    result.error = err;
    return result;
  };

  if (tx.vin.empty()) return fail(TxError::kNoInputs);
  if (tx.vout.empty()) return fail(TxError::kNoOutputs);
  if (tx.serialize().size() > params.max_tx_size)
    return fail(TxError::kOversized);

  Amount total = 0;
  for (const TxOut& out : tx.vout) {
    if (out.value < 0) return fail(TxError::kNegativeOutput);
    if (out.value > params.max_money) return fail(TxError::kOutputTooLarge);
    total += out.value;
    if (total > params.max_money) return fail(TxError::kOutputTooLarge);

    const auto classified = script::classify(out.script_pubkey);
    if (classified.type == script::ScriptType::kOpReturn &&
        classified.data.size() > params.max_op_return_size) {
      return fail(TxError::kOpReturnTooLarge);
    }
  }

  std::unordered_set<OutPoint, OutPointHasher> seen;
  for (const TxIn& in : tx.vin) {
    if (!seen.insert(in.prevout).second)
      return fail(TxError::kDuplicateInput);
  }

  if (tx.is_coinbase()) {
    // Coinbase scriptSig is arbitrary but bounded.
    if (tx.vin[0].script_sig.size() > 100) return fail(TxError::kBadCoinbase);
  } else {
    for (const TxIn& in : tx.vin) {
      if (in.prevout.txid == Hash256{}) return fail(TxError::kBadCoinbase);
    }
  }
  return result;
}

TxValidationResult check_tx_inputs(const Transaction& tx, const CoinView& utxo,
                                   int height, const ChainParams& params,
                                   std::vector<ScriptCheck>* deferred_checks,
                                   std::size_t tx_index,
                                   const PrecomputedTxData* precomp) {
  TxValidationResult result = check_transaction(tx, params);
  if (!result.ok()) return result;
  auto fail = [&result](TxError err) {
    result.error = err;
    return result;
  };

  if (tx.is_coinbase()) return fail(TxError::kBadCoinbase);

  // Locktime: a tx with locktime L confirms only at height >= L, unless all
  // inputs are final.
  if (tx.locktime != 0 &&
      static_cast<std::uint32_t>(height) < tx.locktime) {
    const bool all_final = std::all_of(
        tx.vin.begin(), tx.vin.end(),
        [](const TxIn& in) { return in.sequence == kSequenceFinal; });
    if (!all_final) return fail(TxError::kLocktimeNotReached);
  }

  // One view lookup per input; the coins feed both the fee/maturity pass
  // and the script checks below.
  std::vector<Coin> coins;
  coins.reserve(tx.vin.size());
  for (const TxIn& in : tx.vin) {
    auto coin = utxo.get(in.prevout);
    if (!coin) return fail(TxError::kMissingInput);
    coins.push_back(*std::move(coin));
  }

  Amount total_in = 0;
  for (const Coin& coin : coins) {
    if (coin.coinbase && height - coin.height < params.coinbase_maturity)
      return fail(TxError::kImmatureCoinbase);
    total_in += coin.out.value;
    if (total_in > params.max_money)
      return fail(TxError::kInputValueOutOfRange);
  }
  if (total_in < tx.total_output()) return fail(TxError::kFeeNegative);
  result.fee = total_in - tx.total_output();

  // The txid commits to every prevout (which in turn names the spent coins)
  // and to every scriptSig, so a txid this node has already fully verified
  // needs no script execution at all — the common case when a mempool tx
  // later arrives in a block.
  const Hash256 exec_key = script_exec_key(tx.txid());
  if (script_exec_cache().contains(exec_key)) return result;

  if (deferred_checks) {
    for (std::uint32_t i = 0; i < tx.vin.size(); ++i) {
      deferred_checks->push_back(ScriptCheck{
          &tx, static_cast<std::uint32_t>(tx_index), i,
          coins[i].out.script_pubkey, precomp});
    }
    return result;
  }

  // Inline path (mempool admission): build the sighash midstates here when
  // the caller didn't, so multi-input transactions avoid the quadratic
  // re-serialization even outside block connection.
  std::optional<PrecomputedTxData> local_precomp;
  if (!precomp && tx.vin.size() > 1) {
    local_precomp.emplace(tx);
    precomp = &*local_precomp;
  }
  for (std::size_t i = 0; i < tx.vin.size(); ++i) {
    const TxSignatureChecker checker(tx, i, coins[i].out.script_pubkey,
                                     precomp);
    const auto exec = script::verify_spend(tx.vin[i].script_sig,
                                           coins[i].out.script_pubkey, checker);
    if (!exec.ok()) {
      result.script_error = exec.error;
      return fail(TxError::kScriptFailed);
    }
  }
  script_exec_cache().insert(exec_key);
  return result;
}

BlockValidationResult check_block(const Block& block,
                                  const ChainParams& params) {
  BlockValidationResult result;
  auto fail = [&result](BlockError err) {
    result.error = err;
    return result;
  };

  if (block.txs.empty()) return fail(BlockError::kEmpty);
  if (block.serialize().size() > params.max_block_size)
    return fail(BlockError::kOversized);
  // Under proof-of-stake the election is a signature check against the
  // slot-leader schedule; that needs chain context (the height), so it
  // lives in Blockchain::accept_block. Only PoW is context-free.
  if (params.consensus == ConsensusMode::kProofOfWork &&
      !hash_meets_target(block.hash(), params.pow_zero_bits)) {
    return fail(BlockError::kBadPow);
  }
  if (block.header.merkle_root !=
      compute_merkle_root(block.txs, params.script_check_threads))
    return fail(BlockError::kBadMerkleRoot);
  if (!block.txs[0].is_coinbase())
    return fail(BlockError::kFirstTxNotCoinbase);
  for (std::size_t i = 1; i < block.txs.size(); ++i) {
    if (block.txs[i].is_coinbase()) return fail(BlockError::kMultipleCoinbases);
  }

  // Permissioned mining (Multichain "grant mine"): every coinbase output
  // with value must pay a permitted federation member.
  if (!params.permitted_miners.empty()) {
    for (const TxOut& out : block.txs[0].vout) {
      if (out.value == 0) continue;
      const auto classified = script::classify(out.script_pubkey);
      if (classified.type != script::ScriptType::kP2pkh ||
          !params.miner_permitted(util::ByteView(
              classified.pubkey_hash.data(), classified.pubkey_hash.size()))) {
        return fail(BlockError::kMinerNotPermitted);
      }
    }
  }
  return result;
}

BlockValidationResult connect_block(const Block& block, UtxoSet& utxo,
                                    int height, const ChainParams& params,
                                    BlockUndo& undo, bool verify_scripts) {
  BlockValidationResult result = check_block(block, params);
  if (!result.ok()) return result;

  undo = BlockUndo{};
  Amount total_fees = 0;
  bool failed = false;

  auto rollback = [&]() {
    // Restore spent coins first, then remove created ones — same intra-block
    // spend-chain ordering rule as disconnect_block.
    for (auto it = undo.spent.rbegin(); it != undo.spent.rend(); ++it)
      utxo.add(it->first, it->second);
    for (const OutPoint& op : undo.created) utxo.spend(op);
    undo = BlockUndo{};
  };

  // Pre-size the coin map for everything this block can add; rehashing in
  // the middle of connection is pure waste.
  std::size_t new_outputs = 0;
  for (const Transaction& tx : block.txs) new_outputs += tx.vout.size();
  utxo.reserve(utxo.size() + new_outputs);

  // Contextual checks and UTXO application stay serial (they are order
  // dependent: intra-block spends must see earlier txs' outputs), while the
  // expensive input-script executions are batched and run across the check
  // queue afterwards. ScriptChecks copy the spent scriptPubKeys, so spending
  // the coins below does not invalidate them.
  std::vector<ScriptCheck> checks;
  std::vector<Amount> fees(block.txs.size(), 0);
  std::vector<Hash256> exec_keys(block.txs.size());
  std::size_t contextual_fail_index = block.txs.size();

  // Sighash midstates, one per transaction, shared by all of its deferred
  // checks. A deque keeps them address-stable while the batch grows.
  std::deque<PrecomputedTxData> precomps;

  for (std::size_t i = 1; i < block.txs.size(); ++i) {
    const Transaction& tx = block.txs[i];
    precomps.emplace_back(tx);
    const TxValidationResult tx_result =
        check_tx_inputs(tx, utxo, height, params, &checks, i, &precomps.back());
    if (!tx_result.ok()) {
      result.error = BlockError::kBadTransaction;
      result.tx_failure = tx_result;
      result.failed_tx_index = i;
      contextual_fail_index = i;
      failed = true;
      break;
    }
    total_fees += tx_result.fee;
    fees[i] = tx_result.fee;

    // Apply: spend inputs (this also enforces intra-block double spends —
    // the second spend of the same outpoint fails check_tx_inputs above
    // because the coin is already gone).
    const Hash256 txid = tx.txid();
    exec_keys[i] = script_exec_key(txid);
    for (const TxIn& in : tx.vin) {
      auto coin = utxo.spend(in.prevout);
      undo.spent.emplace_back(in.prevout, *std::move(coin));
    }
    for (std::uint32_t v = 0; v < tx.vout.size(); ++v) {
      // OP_RETURN outputs are provably unspendable; they never enter the
      // UTXO set (directory announcements live only in block bodies).
      if (script::classify(tx.vout[v].script_pubkey).type ==
          script::ScriptType::kOpReturn) {
        continue;
      }
      const OutPoint op{txid, v};
      utxo.add(op, Coin{tx.vout[v], height, false});
      undo.created.push_back(op);
    }
  }

  // Run the batched scripts. Only transactions that fully passed their
  // contextual checks queued anything, so every queued index precedes any
  // contextual failure — and in serial order scripts of tx i run before
  // contextual checks of tx j>i, so the lowest-index script failure is
  // exactly what the serial path would have reported first.
  // Trusted replay (verify_scripts == false) drops the batch: the store
  // only logs blocks that already passed full validation.
  if (!verify_scripts) checks.clear();
  if (const auto script_failure =
          run_script_checks(checks, params.script_check_threads);
      script_failure && script_failure->tx_index < contextual_fail_index) {
    result.error = BlockError::kBadTransaction;
    result.tx_failure = TxValidationResult{
        TxError::kScriptFailed, script_failure->error,
        fees[script_failure->tx_index]};
    result.failed_tx_index = script_failure->tx_index;
    failed = true;
  }

  if (!failed) {
    const Transaction& coinbase = block.txs[0];
    if (coinbase.total_output() > params.block_reward + total_fees) {
      result.error = BlockError::kBadCoinbaseValue;
      failed = true;
    } else {
      const Hash256 cb_txid = coinbase.txid();
      for (std::uint32_t v = 0; v < coinbase.vout.size(); ++v) {
        const OutPoint op{cb_txid, v};
        utxo.add(op, Coin{coinbase.vout[v], height, true});
        undo.created.push_back(op);
      }
    }
  }

  if (failed) {
    rollback();
    return result;
  }

  // Every script in the block verified: remember the txids so a reorg
  // re-connect or mempool revalidation skips execution next time.
  for (std::size_t i = 1; i < block.txs.size(); ++i)
    script_exec_cache().insert(exec_keys[i]);
  return result;
}

void apply_block_from_undo(const Block& block, const BlockUndo& undo,
                           UtxoSet& utxo, int height) {
  // `undo.created` names exactly the outpoints connect_block added (it
  // already excludes OP_RETURN outputs); rebuild each coin from the block's
  // own outputs. The coinbase is always block.txs[0].
  //
  // Creates must run BEFORE spends: an output created and consumed by an
  // intra-block spend chain (offer + redeem confirming in the same block)
  // appears in both lists, and spending-first would leave it resurrected —
  // the replayed node mints coins its peers never saw.
  const Hash256 coinbase_txid = block.txs.empty() ? Hash256{}
                                                  : block.txs[0].txid();
  std::unordered_map<Hash256, const Transaction*, Hash256Hasher> by_txid;
  by_txid.reserve(block.txs.size());
  for (const Transaction& tx : block.txs) by_txid.emplace(tx.txid(), &tx);
  utxo.reserve(utxo.size() + undo.created.size());
  for (const OutPoint& op : undo.created) {
    const auto it = by_txid.find(op.txid);
    if (it == by_txid.end() || op.index >= it->second->vout.size()) continue;
    utxo.add(op, Coin{it->second->vout[op.index], height,
                      op.txid == coinbase_txid});
  }
  for (const auto& [op, coin] : undo.spent) utxo.spend(op);
}

void disconnect_block(const BlockUndo& undo, UtxoSet& utxo) {
  // Mirror image of the apply order above: restore the spent coins first,
  // then delete everything the block created. An intra-block-spent output
  // is in both lists; deleting last guarantees it ends up absent, as it was
  // before the block connected.
  for (auto it = undo.spent.rbegin(); it != undo.spent.rend(); ++it)
    utxo.add(it->first, it->second);
  for (const OutPoint& op : undo.created) utxo.spend(op);
}

}  // namespace bcwan::chain

// Unspent transaction output set.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/transaction.hpp"

namespace bcwan::chain {

struct Coin {
  TxOut out;
  int height = 0;       // block height that created it
  bool coinbase = false;
};

/// Read-only view of spendable coins. UtxoSet is the concrete chainstate;
/// the mempool layers unconfirmed outputs on top without copying.
class CoinView {
 public:
  virtual ~CoinView() = default;
  virtual std::optional<Coin> get(const OutPoint& op) const = 0;
};

class UtxoSet : public CoinView {
 public:
  bool contains(const OutPoint& op) const {
    return coins_.find(op) != coins_.end();
  }
  std::optional<Coin> get(const OutPoint& op) const override;

  void add(const OutPoint& op, Coin coin);
  /// Removes and returns the coin; std::nullopt if absent.
  std::optional<Coin> spend(const OutPoint& op);

  /// Pre-size the backing map (block connection knows how many outputs it
  /// is about to add; rehashing mid-connect is pure waste).
  void reserve(std::size_t n) { coins_.reserve(n); }

  std::size_t size() const noexcept { return coins_.size(); }

  /// All coins whose scriptPubKey matches `script` — wallet rescans.
  std::vector<std::pair<OutPoint, Coin>> find_by_script(
      const script::Script& script) const;

  /// Total value of all coins (supply-conservation checks in tests).
  Amount total_value() const;

 private:
  std::unordered_map<OutPoint, Coin, OutPointHasher> coins_;
};

}  // namespace bcwan::chain

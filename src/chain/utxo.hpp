// Unspent transaction output set.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/transaction.hpp"
#include "util/serial.hpp"

namespace bcwan::chain {

struct Coin {
  TxOut out;
  int height = 0;       // block height that created it
  bool coinbase = false;

  friend bool operator==(const Coin&, const Coin&) = default;
};

/// Coin serialization shared by UTXO snapshots and undo records.
void write_coin(util::Writer& w, const OutPoint& op, const Coin& coin);
/// Throws util::DeserializeError on malformed input.
std::pair<OutPoint, Coin> read_coin(util::Reader& r);

/// Read-only view of spendable coins. UtxoSet is the concrete chainstate;
/// the mempool layers unconfirmed outputs on top without copying.
class CoinView {
 public:
  virtual ~CoinView() = default;
  virtual std::optional<Coin> get(const OutPoint& op) const = 0;
};

/// Net UTXO change over a journal window: coins present before but gone (or
/// replaced) now, and coins present now that differ from before. An
/// outpoint spent and re-created inside one window cancels out entirely.
struct UtxoJournal {
  std::vector<OutPoint> spent;
  std::vector<std::pair<OutPoint, Coin>> added;
};

class UtxoSet : public CoinView {
 public:
  bool contains(const OutPoint& op) const {
    return coins_.find(op) != coins_.end();
  }
  std::optional<Coin> get(const OutPoint& op) const override;

  void add(const OutPoint& op, Coin coin);
  /// Removes and returns the coin; std::nullopt if absent.
  std::optional<Coin> spend(const OutPoint& op);

  /// Start journaling: every add/spend records the outpoint's pre-window
  /// coin the first time it is touched, so take_journal() can emit the net
  /// diff — O(coins touched), never O(set size). Incremental snapshots
  /// depend on this staying enabled between snapshot elements.
  void begin_journal();
  /// Net changes since begin_journal()/the previous take; the window
  /// restarts empty. Journaling stays enabled.
  UtxoJournal take_journal();
  bool journal_enabled() const noexcept { return journaling_; }

  /// Pre-size the backing map (block connection knows how many outputs it
  /// is about to add; rehashing mid-connect is pure waste).
  void reserve(std::size_t n) { coins_.reserve(n); }

  std::size_t size() const noexcept { return coins_.size(); }

  /// All coins whose scriptPubKey matches `script` — wallet rescans.
  std::vector<std::pair<OutPoint, Coin>> find_by_script(
      const script::Script& script) const;

  /// Total value of all coins (supply-conservation checks in tests).
  Amount total_value() const;

  /// Visit every (outpoint, coin) pair — snapshot writers and invariants.
  /// The callback must not mutate the set.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [op, coin] : coins_) fn(op, coin);
  }

  /// Canonical serialization, sorted by outpoint, so equal sets serialize
  /// identically (chainstate snapshots, state hashing).
  util::Bytes serialize() const;
  static std::optional<UtxoSet> deserialize(util::ByteView data);

  /// Double SHA-256 of the canonical serialization: two UTXO sets hash
  /// equal iff they contain exactly the same coins. Crash-recovery gates
  /// compare a recovered node's hash against the uninterrupted run's.
  Hash256 state_hash() const;

 private:
  void record_baseline(const OutPoint& op);

  std::unordered_map<OutPoint, Coin, OutPointHasher> coins_;
  // Journal window: outpoint -> coin value when the window opened
  // (nullopt = did not exist). Only touched outpoints appear.
  std::unordered_map<OutPoint, std::optional<Coin>, OutPointHasher> baseline_;
  bool journaling_ = false;
};

}  // namespace bcwan::chain

// Unspent transaction output set.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/transaction.hpp"
#include "util/serial.hpp"

namespace bcwan::chain {

struct Coin {
  TxOut out;
  int height = 0;       // block height that created it
  bool coinbase = false;

  friend bool operator==(const Coin&, const Coin&) = default;
};

/// Coin serialization shared by UTXO snapshots and undo records.
void write_coin(util::Writer& w, const OutPoint& op, const Coin& coin);
/// Throws util::DeserializeError on malformed input.
std::pair<OutPoint, Coin> read_coin(util::Reader& r);

/// Read-only view of spendable coins. UtxoSet is the concrete chainstate;
/// the mempool layers unconfirmed outputs on top without copying.
class CoinView {
 public:
  virtual ~CoinView() = default;
  virtual std::optional<Coin> get(const OutPoint& op) const = 0;
};

class UtxoSet : public CoinView {
 public:
  bool contains(const OutPoint& op) const {
    return coins_.find(op) != coins_.end();
  }
  std::optional<Coin> get(const OutPoint& op) const override;

  void add(const OutPoint& op, Coin coin);
  /// Removes and returns the coin; std::nullopt if absent.
  std::optional<Coin> spend(const OutPoint& op);

  /// Pre-size the backing map (block connection knows how many outputs it
  /// is about to add; rehashing mid-connect is pure waste).
  void reserve(std::size_t n) { coins_.reserve(n); }

  std::size_t size() const noexcept { return coins_.size(); }

  /// All coins whose scriptPubKey matches `script` — wallet rescans.
  std::vector<std::pair<OutPoint, Coin>> find_by_script(
      const script::Script& script) const;

  /// Total value of all coins (supply-conservation checks in tests).
  Amount total_value() const;

  /// Visit every (outpoint, coin) pair — snapshot writers and invariants.
  /// The callback must not mutate the set.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [op, coin] : coins_) fn(op, coin);
  }

  /// Canonical serialization, sorted by outpoint, so equal sets serialize
  /// identically (chainstate snapshots, state hashing).
  util::Bytes serialize() const;
  static std::optional<UtxoSet> deserialize(util::ByteView data);

  /// Double SHA-256 of the canonical serialization: two UTXO sets hash
  /// equal iff they contain exactly the same coins. Crash-recovery gates
  /// compare a recovered node's hash against the uninterrupted run's.
  Hash256 state_hash() const;

 private:
  std::unordered_map<OutPoint, Coin, OutPointHasher> coins_;
};

}  // namespace bcwan::chain

#include "chain/checkqueue.hpp"

#include <atomic>
#include <functional>
#include <limits>
#include <mutex>

#include "crypto/ecdsa.hpp"
#include "telemetry/metrics.hpp"
#include "util/threadpool.hpp"

namespace bcwan::chain {

namespace {

/// Order key: lower = earlier in serial validation order.
std::uint64_t check_key(std::size_t tx_index, std::size_t input_index) {
  return (static_cast<std::uint64_t>(tx_index) << 32) |
         static_cast<std::uint64_t>(input_index);
}

}  // namespace

script::ScriptError ScriptCheck::run() const {
  const TxSignatureChecker checker(*tx, input_index, script_pubkey, precomp);
  return script::verify_spend(tx->vin[input_index].script_sig, script_pubkey,
                              checker)
      .error;
}

std::optional<ScriptCheckFailure> run_script_checks(
    const std::vector<ScriptCheck>& checks, unsigned threads) {
  if (checks.empty()) return std::nullopt;

  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.histogram("bcwan_chain_script_check_batch_size",
                  "Input-script checks queued per block connection",
                  telemetry::Histogram::Options{1.0, 2.0, 24})
        .observe(static_cast<double>(checks.size()));
    reg.counter("bcwan_chain_script_checks_total",
                "Input-script checks executed (serial or pooled)")
        .add(checks.size());
  }

  // Batch-level warmup: force the one-time wNAF generator tables (process
  // wide) and prime this thread's Montgomery-context MRU for the curve
  // moduli, so the first cold verify of the batch doesn't pay setup costs
  // that every later verify amortizes. A no-op after the first batch.
  crypto::ecdsa_warmup();

  if (threads <= 1) {
    for (const ScriptCheck& check : checks) {
      const script::ScriptError err = check.run();
      if (err != script::ScriptError::kOk)
        return ScriptCheckFailure{check.tx_index, check.input_index, err};
    }
    return std::nullopt;
  }

  constexpr std::uint64_t kNoFailure =
      std::numeric_limits<std::uint64_t>::max();
  std::atomic<std::uint64_t> best_key{kNoFailure};
  std::mutex best_mutex;
  ScriptCheckFailure best;

  // Chunk the batch so each pool task amortizes queue traffic over several
  // script executions; 4 chunks per thread keeps the stealing granular
  // enough to balance an uneven mix (RSA redeems vs plain P2PKH).
  const std::size_t chunk =
      std::max<std::size_t>(1, checks.size() / (threads * 4));
  std::vector<std::function<void()>> tasks;
  tasks.reserve((checks.size() + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < checks.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, checks.size());
    tasks.push_back([&checks, &best_key, &best_mutex, &best, begin, end] {
      // Pool workers have their own thread-local Montgomery MRU; prime it
      // once per chunk rather than inside the first script check.
      crypto::ecdsa_warmup();
      for (std::size_t i = begin; i < end; ++i) {
        const ScriptCheck& check = checks[i];
        const std::uint64_t key =
            check_key(check.tx_index, check.input_index);
        // A check later than the current best failure cannot change the
        // verdict; skip it once the block is known bad.
        if (key > best_key.load(std::memory_order_relaxed)) continue;
        const script::ScriptError err = check.run();
        if (err == script::ScriptError::kOk) continue;
        std::lock_guard lock(best_mutex);
        if (key < best_key.load(std::memory_order_relaxed)) {
          best_key.store(key, std::memory_order_relaxed);
          best = {check.tx_index, check.input_index, err};
        }
      }
    });
  }

  util::ThreadPool::shared(threads - 1).run(std::move(tasks));

  if (best_key.load(std::memory_order_relaxed) == kNoFailure)
    return std::nullopt;
  return best;
}

}  // namespace bcwan::chain
